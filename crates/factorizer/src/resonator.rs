//! The iterative resonator factorization loop, executed as batch kernels.
//!
//! The three factorization steps (unbind → similarity search → projection, Fig. 8) are
//! phrased over [`HvMatrix`] batches and dispatched through a [`VsaBackend`], so one
//! `Factorizer` can decode a single query or a whole panel batch with the same code
//! path. Every query in a batch carries its own derived noise stream, which makes
//! [`Factorizer::factorize_batch`] return *exactly* the results of calling
//! [`Factorizer::factorize`] per query — batching is a pure performance transform.

use crate::config::FactorizerConfig;
use cogsys_vsa::batch::{HvMatrix, VsaBackend};
use cogsys_vsa::codebook::CodebookSet;
use cogsys_vsa::quant::fake_quantize_slice;
use cogsys_vsa::{ops, Hypervector, VsaError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Outcome of one factorization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorizationResult {
    /// The decoded codevector index for each factor.
    pub indices: Vec<usize>,
    /// Cosine similarity of the re-bound estimate to the input query.
    pub similarity: f32,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether the convergence threshold was reached within the iteration budget.
    pub converged: bool,
    /// Whether a limit cycle was detected (estimates repeating without improvement);
    /// only possible when stochasticity is disabled.
    pub limit_cycle: bool,
}

impl FactorizationResult {
    /// Returns `true` if the decoded indices equal `expected`.
    pub fn matches(&self, expected: &[usize]) -> bool {
        self.indices == expected
    }
}

/// The CogSys iterative factorizer.
///
/// Construct once with a [`FactorizerConfig`] and reuse across queries; the struct holds
/// no per-query state. The configured [`cogsys_vsa::BackendKind`] decides how the batch
/// kernels execute.
#[derive(Debug, Clone)]
pub struct Factorizer {
    config: FactorizerConfig,
    backend: Arc<dyn VsaBackend>,
}

impl Default for Factorizer {
    fn default() -> Self {
        Self::new(FactorizerConfig::default())
    }
}

/// Adds i.i.d. Gaussian noise in place; numerically identical to
/// [`ops::add_gaussian_noise`] on the same generator state.
fn add_noise_slice(values: &mut [f32], sigma: f32, rng: &mut StdRng) {
    let normal = Normal::new(0.0_f32, sigma).expect("sigma is positive and finite");
    for v in values {
        *v += normal.sample(rng);
    }
}

/// Cosine similarity of two rows, matching [`ops::try_cosine_similarity`] numerics.
fn cosine_rows(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let norm = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>().sqrt();
    let denom = norm(a) * norm(b);
    if denom == 0.0 {
        return 0.0;
    }
    dot / denom
}

/// Per-query mutable state of the batched iteration.
struct QueryState {
    active: bool,
    sim_sigma: f32,
    proj_sigma: f32,
    decoded: Vec<usize>,
    best_indices: Vec<usize>,
    best_similarity: f32,
    history: Vec<Vec<usize>>,
    result: Option<FactorizationResult>,
}

impl Factorizer {
    /// Creates a factorizer with the given configuration, instantiating the backend the
    /// configuration names.
    ///
    /// # Panics
    /// Panics if the configuration fails [`FactorizerConfig::validate`]; configurations
    /// are programmer-supplied constants, so an invalid one is a bug at the call site.
    pub fn new(config: FactorizerConfig) -> Self {
        let backend = config.backend.create();
        Self::with_backend(config, backend)
    }

    /// Creates a factorizer running on an explicit (possibly shared) backend instance.
    ///
    /// # Panics
    /// Panics if the configuration fails [`FactorizerConfig::validate`].
    pub fn with_backend(config: FactorizerConfig, backend: Arc<dyn VsaBackend>) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid factorizer configuration: {msg}");
        }
        Self { config, backend }
    }

    /// Returns the configuration this factorizer runs with.
    pub fn config(&self) -> &FactorizerConfig {
        &self.config
    }

    /// The execution backend the batch kernels run on.
    pub fn backend(&self) -> &Arc<dyn VsaBackend> {
        &self.backend
    }

    /// Factorizes `query` against the codebooks in `set`.
    ///
    /// The initial estimate for each factor is the (unnormalised) superposition of all
    /// its codevectors, following the resonator-network convention: the search starts
    /// from "every candidate in superposition" and sharpens each factor in parallel.
    ///
    /// One value is drawn from `rng` to seed the query's private noise stream, so a
    /// sequence of `factorize` calls consumes `rng` exactly like one
    /// [`Factorizer::factorize_batch`] call over the same queries.
    ///
    /// # Errors
    /// Propagates [`VsaError`] for dimension mismatches between the query and the
    /// codebooks.
    pub fn factorize<R: Rng + ?Sized>(
        &self,
        set: &CodebookSet,
        query: &Hypervector,
        rng: &mut R,
    ) -> Result<FactorizationResult, VsaError> {
        let queries = HvMatrix::from_hypervector(query);
        let mut streams = [StdRng::seed_from_u64(rng.next_u64())];
        let mut results = self.factorize_matrix(set, &queries, &mut streams)?;
        Ok(results.pop().expect("one query row yields one result"))
    }

    /// Factorizes a batch of queries in one pass over the batch kernels.
    ///
    /// Returns one [`FactorizationResult`] per query, in order, identical to what
    /// per-query [`Factorizer::factorize`] calls with the same `rng` would produce.
    ///
    /// # Errors
    /// Propagates [`VsaError`] for dimension mismatches.
    pub fn factorize_batch<R: Rng + ?Sized>(
        &self,
        set: &CodebookSet,
        queries: &[Hypervector],
        rng: &mut R,
    ) -> Result<Vec<FactorizationResult>, VsaError> {
        let matrix = HvMatrix::from_rows(queries)?;
        let mut streams: Vec<StdRng> = queries
            .iter()
            .map(|_| StdRng::seed_from_u64(rng.next_u64()))
            .collect();
        self.factorize_matrix(set, &matrix, &mut streams)
    }

    /// The batched resonator engine: factorizes every row of `queries`, driving noise
    /// for row `q` from `streams[q]`.
    ///
    /// This is the lowest-level entry point; [`Factorizer::factorize`] and
    /// [`Factorizer::factorize_batch`] are thin wrappers around it.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when `queries.dim()` differs from the
    /// codebook dimension or `streams.len() != queries.rows()`.
    // The row loops index three parallel structures (states, streams, matrix rows) by
    // the same q; iterator-zip rewrites would fight the borrow checker for no clarity.
    #[allow(clippy::needless_range_loop)]
    pub fn factorize_matrix(
        &self,
        set: &CodebookSet,
        queries: &HvMatrix,
        streams: &mut [StdRng],
    ) -> Result<Vec<FactorizationResult>, VsaError> {
        let n = queries.rows();
        let num_factors = set.num_factors();
        let dim = set.dim();
        if queries.dim() != dim && n > 0 {
            return Err(VsaError::DimensionMismatch {
                left: dim,
                right: queries.dim(),
            });
        }
        if streams.len() != n {
            return Err(VsaError::DimensionMismatch {
                left: n,
                right: streams.len(),
            });
        }
        if n == 0 {
            return Ok(Vec::new());
        }
        let backend = self.backend.as_ref();
        let precision = self.config.precision;

        // Quantized queries (the factorization runs at the configured precision).
        let mut query_q = queries.clone();
        for q in 0..n {
            fake_quantize_slice(query_q.row_mut(q), precision);
        }

        // Initial estimates: bundle of every codevector in each factor, snapped to
        // bipolar so the Hadamard unbinding stays well-conditioned. The start point is
        // query-independent, hence one broadcast row per factor.
        let mut estimates: Vec<HvMatrix> = (0..num_factors)
            .map(|f| {
                let cb = set.factor(f).expect("factor index in range");
                let init = ops::majority_bundle(cb.iter()).expect("codebooks are non-empty");
                HvMatrix::broadcast(&init, n)
            })
            .collect();

        let noise_scale = (dim as f32).sqrt();
        let mut states: Vec<QueryState> = (0..n)
            .map(|_| QueryState {
                active: true,
                sim_sigma: self.config.stochasticity.similarity_sigma * noise_scale,
                proj_sigma: self.config.stochasticity.projection_sigma * noise_scale,
                decoded: vec![0usize; num_factors],
                best_indices: vec![0usize; num_factors],
                best_similarity: f32::NEG_INFINITY,
                history: Vec::new(),
                result: None,
            })
            .collect();
        let mut active_count = n;

        // Reused batch scratch — the iteration allocates nothing once these warm up.
        let mut unbound = HvMatrix::default();
        let mut scratch = HvMatrix::default();
        let mut sims = HvMatrix::default();
        let mut projected = HvMatrix::default();
        let mut rebound = HvMatrix::zeros(n, dim);

        let deterministic = !self.config.stochasticity.is_enabled();

        // Converged rows stay in the batch (their kernel lanes compute discarded
        // values) rather than being compacted out: in the dominant pipeline workload
        // no row reaches the convergence threshold early — superposed scene blocks cap
        // the rebind cosine below it — so gather/scatter compaction would add
        // complexity without touching the hot path. Revisit if single-block workloads
        // with early convergence become throughput-critical.
        for iteration in 1..=self.config.max_iterations {
            if active_count == 0 {
                break;
            }

            for f in 0..num_factors {
                let cb_matrix = set.factor(f)?.matrix();

                // Step 1: unbind the contribution of every other factor's estimate.
                // Estimates are updated in place (Gauss–Seidel style), so later factors
                // in the same sweep already see the refreshed earlier factors — this is
                // the "interactive" factorization the paper describes and converges in
                // fewer iterations than a fully synchronous update.
                set.unbind_all_but_batch(
                    backend,
                    &query_q,
                    &estimates,
                    f,
                    &mut unbound,
                    &mut scratch,
                )?;
                for q in 0..n {
                    if states[q].active {
                        fake_quantize_slice(unbound.row_mut(q), precision);
                    }
                }

                // Step 2: similarity search against the factor codebook (one GEMM for
                // the whole batch).
                backend.similarity_matrix_into(cb_matrix, &unbound, &mut sims)?;
                for q in 0..n {
                    if !states[q].active {
                        continue;
                    }
                    if states[q].sim_sigma > 0.0 {
                        add_noise_slice(sims.row_mut(q), states[q].sim_sigma, &mut streams[q]);
                    }
                    states[q].decoded[f] = ops::argmax(sims.row(q)).unwrap_or(0);
                }

                // Step 3: project back into the codevector space and binarise.
                backend.project_batch_into(cb_matrix, &sims, &mut projected)?;
                for q in 0..n {
                    if !states[q].active {
                        continue;
                    }
                    if states[q].proj_sigma > 0.0 {
                        add_noise_slice(
                            projected.row_mut(q),
                            states[q].proj_sigma,
                            &mut streams[q],
                        );
                    }
                    fake_quantize_slice(projected.row_mut(q), precision);
                    for (slot, &v) in estimates[f].row_mut(q).iter_mut().zip(projected.row(q)) {
                        *slot = if v < 0.0 { -1.0 } else { 1.0 };
                    }
                }
            }

            // Convergence check: re-bind the decoded codevectors and compare to the
            // query, batched across rows (scratch ping-pong, no allocation).
            scratch.ensure_shape(n, dim);
            for q in 0..n {
                let row_indices = &states[q].decoded;
                rebound
                    .row_mut(q)
                    .copy_from_slice(set.factor(0)?.matrix().row(row_indices[0]));
            }
            for f in 1..num_factors {
                for q in 0..n {
                    scratch
                        .row_mut(q)
                        .copy_from_slice(set.factor(f)?.matrix().row(states[q].decoded[f]));
                }
                backend.bind_batch_into(&rebound, &scratch, set.binding(), &mut unbound)?;
                std::mem::swap(&mut rebound, &mut unbound);
            }

            for q in 0..n {
                let state = &mut states[q];
                if !state.active {
                    continue;
                }
                let similarity = cosine_rows(rebound.row(q), query_q.row(q));
                if similarity > state.best_similarity {
                    state.best_similarity = similarity;
                    state.best_indices.clone_from(&state.decoded);
                }

                if similarity >= self.config.convergence_threshold {
                    state.result = Some(FactorizationResult {
                        indices: state.decoded.clone(),
                        similarity,
                        iterations: iteration,
                        converged: true,
                        limit_cycle: false,
                    });
                    state.active = false;
                    active_count -= 1;
                    continue;
                }

                // Limit-cycle detection: the same decoded tuple recurring within the
                // window without reaching the threshold (deterministic dynamics only).
                if deterministic {
                    if state
                        .history
                        .iter()
                        .rev()
                        .take(self.config.limit_cycle_window)
                        .any(|h| h == &state.decoded)
                    {
                        state.result = Some(FactorizationResult {
                            indices: state.best_indices.clone(),
                            similarity: state.best_similarity,
                            iterations: self.config.max_iterations,
                            converged: false,
                            limit_cycle: true,
                        });
                        state.active = false;
                        active_count -= 1;
                        continue;
                    }
                    state.history.push(state.decoded.clone());
                    if state.history.len() > self.config.limit_cycle_window * 4 {
                        state.history.remove(0);
                    }
                }

                state.sim_sigma *= self.config.stochasticity.decay;
                state.proj_sigma *= self.config.stochasticity.decay;
            }
        }

        Ok(states
            .into_iter()
            .map(|state| {
                state.result.unwrap_or(FactorizationResult {
                    indices: state.best_indices,
                    similarity: state.best_similarity,
                    iterations: self.config.max_iterations,
                    converged: false,
                    limit_cycle: false,
                })
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StochasticityConfig;
    use cogsys_vsa::codebook::BindingOp;
    use cogsys_vsa::{rng, BackendKind, CodebookSet, Precision};
    use proptest::prelude::*;

    fn standard_set(seed: u64, sizes: &[usize], dim: usize) -> (CodebookSet, rand::rngs::StdRng) {
        let mut r = rng(seed);
        let set = CodebookSet::random(sizes, dim, BindingOp::Hadamard, &mut r);
        (set, r)
    }

    #[test]
    fn clean_query_is_factorized_exactly() {
        let (set, mut r) = standard_set(100, &[10, 10, 10], 1024);
        let query = set.bind_indices(&[2, 7, 4]).unwrap();
        let f = Factorizer::default();
        let result = f.factorize(&set, &query, &mut r).unwrap();
        assert_eq!(result.indices, vec![2, 7, 4]);
        assert!(result.converged);
        assert!(result.similarity > 0.9);
    }

    #[test]
    fn noisy_query_is_factorized_correctly() {
        let (set, mut r) = standard_set(101, &[8, 8, 8], 1024);
        let clean = set.bind_indices(&[1, 6, 3]).unwrap();
        let noisy = ops::flip_noise(&clean, 0.1, &mut r);
        let f = Factorizer::default();
        let result = f.factorize(&set, &noisy, &mut r).unwrap();
        assert_eq!(result.indices, vec![1, 6, 3]);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let (set, mut r) = standard_set(102, &[4, 4], 256);
        let query = Hypervector::zeros(128);
        let f = Factorizer::default();
        assert!(f.factorize(&set, &query, &mut r).is_err());
    }

    #[test]
    fn without_stochasticity_still_converges_on_easy_problems() {
        let (set, mut r) = standard_set(103, &[6, 6], 512);
        let query = set.bind_indices(&[5, 0]).unwrap();
        let f = Factorizer::new(FactorizerConfig::without_stochasticity());
        let result = f.factorize(&set, &query, &mut r).unwrap();
        assert_eq!(result.indices, vec![5, 0]);
        assert!(result.converged);
    }

    #[test]
    fn stochasticity_reduces_iterations_on_hard_problems() {
        // Paper claim (Tab. VIII context, Sec. IV-B): noise injection speeds up
        // convergence. Compare average iteration counts over several hard queries
        // (small dimension relative to the product-space size).
        let mut iters_with = 0usize;
        let mut iters_without = 0usize;
        let trials = 12;
        for t in 0..trials {
            let (set, mut r) = standard_set(200 + t, &[12, 12, 12], 256);
            let query = set.bind_indices(&[3, 9, 11]).unwrap();

            let with = Factorizer::new(FactorizerConfig::default())
                .factorize(&set, &query, &mut r)
                .unwrap();
            let without = Factorizer::new(FactorizerConfig::without_stochasticity())
                .factorize(&set, &query, &mut r)
                .unwrap();
            iters_with += with.iterations;
            iters_without += without.iterations;
        }
        // Noise should not be dramatically worse; typically it is equal or better on
        // hard instances because the deterministic iteration gets stuck in cycles.
        assert!(
            iters_with as f64 <= iters_without as f64 * 1.5,
            "with noise: {iters_with}, without: {iters_without}"
        );
    }

    #[test]
    fn limit_cycle_detection_flags_stuck_runs() {
        // An adversarially tiny dimension with many combinations usually cannot be
        // factorized; the deterministic iteration should terminate early via limit-cycle
        // detection rather than burning the whole budget.
        let (set, mut r) = standard_set(300, &[16, 16, 16], 32);
        let query = set.bind_indices(&[0, 1, 2]).unwrap();
        let config = FactorizerConfig {
            max_iterations: 500,
            stochasticity: StochasticityConfig::disabled(),
            ..FactorizerConfig::default()
        };
        let result = Factorizer::new(config)
            .factorize(&set, &query, &mut r)
            .unwrap();
        if !result.converged {
            assert!(
                result.limit_cycle || result.iterations == 500,
                "non-converged run should be explained"
            );
        }
    }

    #[test]
    fn int8_precision_still_factorizes() {
        let (set, mut r) = standard_set(104, &[8, 8, 8], 1024);
        let query = set.bind_indices(&[7, 2, 5]).unwrap();
        let f = Factorizer::new(FactorizerConfig::default().with_precision(Precision::Int8));
        let result = f.factorize(&set, &query, &mut r).unwrap();
        assert_eq!(result.indices, vec![7, 2, 5]);
    }

    #[test]
    fn fp8_precision_still_factorizes() {
        let (set, mut r) = standard_set(105, &[8, 8, 8], 1024);
        let query = set.bind_indices(&[0, 3, 6]).unwrap();
        let f = Factorizer::new(FactorizerConfig::default().with_precision(Precision::Fp8));
        let result = f.factorize(&set, &query, &mut r).unwrap();
        assert_eq!(result.indices, vec![0, 3, 6]);
    }

    #[test]
    fn circular_convolution_binding_is_supported() {
        let mut r = rng(106);
        let set = CodebookSet::random(&[6, 6], 2048, BindingOp::CircularConvolution, &mut r);
        let query = set.bind_indices(&[4, 2]).unwrap();
        let config = FactorizerConfig {
            convergence_threshold: 0.3,
            ..FactorizerConfig::default()
        };
        let result = Factorizer::new(config)
            .factorize(&set, &query, &mut r)
            .unwrap();
        assert_eq!(result.indices, vec![4, 2]);
    }

    #[test]
    fn result_matches_helper() {
        let r = FactorizationResult {
            indices: vec![1, 2],
            similarity: 1.0,
            iterations: 1,
            converged: true,
            limit_cycle: false,
        };
        assert!(r.matches(&[1, 2]));
        assert!(!r.matches(&[2, 1]));
    }

    #[test]
    #[should_panic(expected = "invalid factorizer configuration")]
    fn invalid_config_panics_at_construction() {
        let c = FactorizerConfig {
            max_iterations: 0,
            ..FactorizerConfig::default()
        };
        let _ = Factorizer::new(c);
    }

    #[test]
    fn factorize_batch_equals_per_query_factorize() {
        // The satellite regression: batching must be a pure performance transform.
        // Stochasticity stays ON — per-query noise streams make the paths identical.
        let (set, mut r) = standard_set(400, &[8, 8, 8], 512);
        let tuples = [[0usize, 1, 2], [7, 6, 5], [3, 3, 3], [2, 0, 7], [5, 4, 1]];
        let queries: Vec<Hypervector> = tuples
            .iter()
            .map(|t| {
                let clean = set.bind_indices(t).unwrap();
                ops::flip_noise(&clean, 0.05, &mut r)
            })
            .collect();
        let factorizer = Factorizer::default();

        let mut rng_batch = rng(777);
        let batch = factorizer
            .factorize_batch(&set, &queries, &mut rng_batch)
            .unwrap();

        let mut rng_single = rng(777);
        for (q, query) in queries.iter().enumerate() {
            let single = factorizer.factorize(&set, query, &mut rng_single).unwrap();
            assert_eq!(batch[q], single, "query {q}");
        }
    }

    #[test]
    fn reference_and_parallel_backends_decode_identically() {
        let (set, mut r) = standard_set(401, &[8, 8], 512);
        let query = ops::flip_noise(&set.bind_indices(&[2, 6]).unwrap(), 0.05, &mut r);
        let reference =
            Factorizer::new(FactorizerConfig::default().with_backend(BackendKind::Reference));
        let parallel =
            Factorizer::new(FactorizerConfig::default().with_backend(BackendKind::Parallel));
        let mut r1 = rng(55);
        let mut r2 = rng(55);
        let a = reference.factorize(&set, &query, &mut r1).unwrap();
        let b = parallel.factorize(&set, &query, &mut r2).unwrap();
        // Decoded indices must agree; the similarity score may differ within the
        // backends' 1e-4 cosine contract (lane-split similarity accumulation).
        assert_eq!(a.indices, b.indices);
        assert_eq!(a.converged, b.converged);
        assert!((a.similarity - b.similarity).abs() < 1e-4);
    }

    #[test]
    fn batch_of_empty_queries_is_empty() {
        let (set, mut r) = standard_set(402, &[4, 4], 128);
        let results = Factorizer::default()
            .factorize_batch(&set, &[], &mut r)
            .unwrap();
        assert!(results.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn prop_random_queries_factorize(seed in 0u64..30, i0 in 0usize..6, i1 in 0usize..6) {
            let (set, mut r) = standard_set(seed, &[6, 6], 1024);
            let query = set.bind_indices(&[i0, i1]).unwrap();
            let result = Factorizer::default().factorize(&set, &query, &mut r).unwrap();
            prop_assert_eq!(result.indices, vec![i0, i1]);
        }
    }
}
