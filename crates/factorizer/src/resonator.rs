//! The iterative resonator factorization loop, executed as batch kernels.
//!
//! The three factorization steps (unbind → similarity search → projection, Fig. 8) are
//! phrased over [`HvMatrix`] batches and dispatched through a [`VsaBackend`], so one
//! `Factorizer` can decode a single query or a whole panel batch with the same code
//! path. Every query in a batch carries its own derived noise stream, which makes
//! [`Factorizer::factorize_batch`] return *exactly* the results of calling
//! [`Factorizer::factorize`] per query — batching is a pure performance transform.

use crate::config::FactorizerConfig;
use cogsys_vsa::batch::{HvMatrix, VsaBackend};
use cogsys_vsa::codebook::{BindingOp, CodebookSet};
use cogsys_vsa::packed::{BitMatrix, CleanupScratch, FusionMode, ResonatePhase, WordSpec};
use cogsys_vsa::quant::fake_quantize_slice;
use cogsys_vsa::{ops, Hypervector, Precision, VsaError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Outcome of one factorization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorizationResult {
    /// The decoded codevector index for each factor.
    pub indices: Vec<usize>,
    /// Cosine similarity of the re-bound estimate to the input query.
    pub similarity: f32,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether the convergence threshold was reached within the iteration budget.
    pub converged: bool,
    /// Whether a limit cycle was detected (estimates repeating without improvement);
    /// only possible when stochasticity is disabled.
    pub limit_cycle: bool,
}

impl FactorizationResult {
    /// Returns `true` if the decoded indices equal `expected`.
    pub fn matches(&self, expected: &[usize]) -> bool {
        self.indices == expected
    }
}

/// The CogSys iterative factorizer.
///
/// Construct once with a [`FactorizerConfig`] and reuse across queries; the struct holds
/// no per-query state. The configured [`cogsys_vsa::BackendKind`] decides how the batch
/// kernels execute.
#[derive(Debug, Clone)]
pub struct Factorizer {
    config: FactorizerConfig,
    backend: Arc<dyn VsaBackend>,
}

impl Default for Factorizer {
    fn default() -> Self {
        Self::new(FactorizerConfig::default())
    }
}

/// The stochasticity kernel: zero-mean symmetric **triangular** noise on
/// `[-amplitude, amplitude]` with `amplitude = sqrt(6)·sigma` (so the variance is
/// exactly `sigma²`), sampled as the difference of two uniform draws from the query's
/// private stream.
///
/// Two properties make this the right noise source for the resonator's hot loop:
///
/// * **Cheap.** One sample is two generator words and a multiply. The Box–Muller
///   Gaussian it replaces spent ~10× longer in `ln`/`cos` per sample, and the
///   projection step consumes one sample per *dimension* per factor per iteration —
///   profiling showed noise generation, not VSA arithmetic, dominating the whole
///   solver (≈230 µs vs ≈46 µs per row-iteration at d = 2048).
/// * **Bounded.** A sample can never exceed `amplitude` in magnitude, so the
///   projection step can prove `sign(v + z) == sign(v)` whenever `|v| > amplitude`
///   and skip the draw entirely ([`BoundedNoise::perturb_signs`]). On the FP32 path
///   (where the sign threshold directly follows the noise) only the binarised sign
///   survives the iteration, so a skipped draw is provably without downstream
///   effect; see `perturb_signs` for the sub-FP32 caveat.
///
/// The annealing role of stochasticity (paper Sec. IV-B: escape limit cycles,
/// converge in fewer iterations) needs symmetric zero-mean jitter on the scale of the
/// cross-similarity noise floor; the exact tail shape is immaterial, and the
/// `stochasticity_reduces_iterations_on_hard_problems` regression pins the behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedNoise {
    amplitude: f32,
}

/// Dimensions per early-out block in [`BoundedNoise::perturb_signs`]: matches the
/// 64-bit word width of the packed sign planes, so one skipped block corresponds to
/// one whole word of the downstream [`cogsys_vsa::BitMatrix`] row.
const NOISE_CHUNK_DIMS: usize = 64;

impl BoundedNoise {
    /// The noise for one sigma, or `None` when disabled (`sigma == 0`). Sigmas are
    /// validated by [`FactorizerConfig::validate`] (finite, non-negative).
    pub fn for_sigma(sigma: f32) -> Option<Self> {
        (sigma > 0.0).then(|| Self {
            amplitude: sigma * 6.0_f32.sqrt(),
        })
    }

    /// The support bound: samples lie in `[-amplitude, amplitude]`.
    pub fn amplitude(&self) -> f32 {
        self.amplitude
    }

    /// One sample: `(u1 - u2) · amplitude`, triangular on `[-amplitude, amplitude]`.
    /// The uniforms are 24-bit multiples of 2⁻²⁴ in `[0, 1)`, so the difference is
    /// exact in `f32` and the bound is tight (`|z| ≤ amplitude` after rounding).
    #[inline]
    fn sample(&self, rng: &mut StdRng) -> f32 {
        let u1: f32 = rng.gen();
        let u2: f32 = rng.gen();
        (u1 - u2) * self.amplitude
    }

    /// Adds one sample to every element — the similarity-step perturbation, where the
    /// scores feed a global argmax and no element can be proven irrelevant.
    pub fn perturb_all(&self, values: &mut [f32], rng: &mut StdRng) {
        for v in values {
            *v += self.sample(rng);
        }
    }

    /// Adds one sample to every element whose **sign** the noise could possibly flip
    /// — the projection-step perturbation. `|v| > amplitude ≥ |z|` bounds `v + z`
    /// strictly away from zero on the same side as `v` (two finite `f32`s only sum
    /// to ±0.0 when they are exact negatives, which the strict bound excludes), so
    /// on the FP32 path — where the sign threshold directly follows — the skipped
    /// draw is provably dead weight. At sub-FP32 precisions `fake_quantize` sits
    /// between the noise and the sign threshold and the skip is *not* equivalent to
    /// a full-sampling run (quantization can move a near-zero value across zero and
    /// its row-global Int8 scale couples elements); it remains a well-defined noise
    /// model there because the skip rule is deterministic in the accumulator values.
    /// Skipping changes which stream position lands on which dimension, but every
    /// engine — dense and packed, per-query and batched — runs this same code on
    /// bitwise-identical accumulators, so their skip patterns and therefore their
    /// decisions stay identical at every precision.
    ///
    /// On top of the per-element skip sits a **word-level early-out**: the slice is
    /// walked in [`NOISE_CHUNK_DIMS`]-wide blocks (one packed sign-plane word), and
    /// a block whose minimum `|v|` exceeds the amplitude is skipped without testing
    /// its elements individually. The block test is a branchless min-reduction the
    /// compiler vectorizes, so proving 64 skips costs a handful of SIMD ops instead
    /// of 64 predicted branches. This is bitwise-equal to the element-wise rule
    /// (exposed as [`BoundedNoise::perturb_signs_elementwise`] for tests and
    /// benchmarks): a skipped block's elements all satisfy `|v| > amplitude` and
    /// would each have drawn nothing, so values and rng stream positions agree —
    /// NaN included, since `NaN.abs() <= a` is false element-wise and the
    /// `min` reduction ignores NaN operands (the block then skips exactly when all
    /// non-NaN magnitudes exceed the amplitude, or unconditionally when every
    /// element is NaN — in both cases zero draws either way).
    pub fn perturb_signs(&self, values: &mut [f32], rng: &mut StdRng) {
        let a = self.amplitude;
        for chunk in values.chunks_mut(NOISE_CHUNK_DIMS) {
            let min_mag = chunk.iter().fold(f32::INFINITY, |m, v| m.min(v.abs()));
            if min_mag > a {
                continue;
            }
            for v in chunk {
                if v.abs() <= a {
                    *v += self.sample(rng);
                }
            }
        }
    }

    /// The element-wise reference rule behind [`BoundedNoise::perturb_signs`],
    /// without the word-level early-out. Kept public so proptests and the
    /// `noise_signs` benchmark can pin the early-out path bitwise against it.
    pub fn perturb_signs_elementwise(&self, values: &mut [f32], rng: &mut StdRng) {
        let a = self.amplitude;
        for v in values {
            if v.abs() <= a {
                *v += self.sample(rng);
            }
        }
    }

    /// [`BoundedNoise::perturb_signs`] with a [`WordSpec`] monomorphization hint:
    /// when the slice is exactly `W` full 64-dim blocks the walk runs with a
    /// compile-time trip count and fixed-size block arrays (so the min-|v|
    /// reduction vectorizes without tail handling). Same blocks, same element
    /// order, same skip rule — bitwise identical values and stream consumption.
    pub fn perturb_signs_spec(&self, spec: WordSpec, values: &mut [f32], rng: &mut StdRng) {
        match spec {
            WordSpec::W16 if values.len() == 16 * NOISE_CHUNK_DIMS => {
                self.perturb_signs_w::<16>(values, rng)
            }
            WordSpec::W32 if values.len() == 32 * NOISE_CHUNK_DIMS => {
                self.perturb_signs_w::<32>(values, rng)
            }
            WordSpec::W64 if values.len() == 64 * NOISE_CHUNK_DIMS => {
                self.perturb_signs_w::<64>(values, rng)
            }
            _ => self.perturb_signs(values, rng),
        }
    }

    /// Monomorphized [`BoundedNoise::perturb_signs`] body over exactly `W` full
    /// blocks.
    fn perturb_signs_w<const W: usize>(&self, values: &mut [f32], rng: &mut StdRng) {
        debug_assert_eq!(values.len(), W * NOISE_CHUNK_DIMS);
        let a = self.amplitude;
        for chunk in values.chunks_exact_mut(NOISE_CHUNK_DIMS).take(W) {
            let chunk: &mut [f32; NOISE_CHUNK_DIMS] =
                chunk.try_into().expect("chunks_exact yields full blocks");
            let min_mag = chunk.iter().fold(f32::INFINITY, |m, v| m.min(v.abs()));
            if min_mag > a {
                continue;
            }
            for v in chunk {
                if v.abs() <= a {
                    *v += self.sample(rng);
                }
            }
        }
    }
}

/// Cosine similarity of two rows — the canonical [`ops::cosine_slices`] numerics.
fn cosine_rows(a: &[f32], b: &[f32]) -> f32 {
    ops::cosine_slices(a, b)
}

/// Per-query mutable state of the batched iteration.
///
/// Indexed by the *original* query index throughout; converged queries are compacted
/// out of the batch matrices (see the `order` vectors in the engines) but their state
/// stays here until the results are assembled. Lives in [`FactorizerScratch`] and is
/// [`QueryState::reset`] per call, so the steady state reuses its vectors.
#[derive(Debug, Default)]
struct QueryState {
    sim_sigma: f32,
    proj_sigma: f32,
    /// Noise kernels for the current sigmas, rebuilt only when the schedule decays.
    sim_noise: Option<BoundedNoise>,
    proj_noise: Option<BoundedNoise>,
    decoded: Vec<usize>,
    best_indices: Vec<usize>,
    best_similarity: f32,
    history: Vec<Vec<usize>>,
    result: Option<FactorizationResult>,
}

impl QueryState {
    /// Re-initialises the state for a fresh query, keeping the vector allocations.
    fn reset(&mut self, config: &FactorizerConfig, num_factors: usize, noise_scale: f32) {
        self.sim_sigma = config.stochasticity.similarity_sigma * noise_scale;
        self.proj_sigma = config.stochasticity.projection_sigma * noise_scale;
        self.sim_noise = BoundedNoise::for_sigma(self.sim_sigma);
        self.proj_noise = BoundedNoise::for_sigma(self.proj_sigma);
        self.decoded.clear();
        self.decoded.resize(num_factors, 0);
        self.best_indices.clear();
        self.best_indices.resize(num_factors, 0);
        self.best_similarity = f32::NEG_INFINITY;
        self.history.clear();
        self.result = None;
    }

    /// End-of-iteration bookkeeping for one query: records the rebind `similarity`,
    /// detects convergence and (deterministic dynamics only) limit cycles, and decays
    /// the noise schedule. Returns `true` when the query is finished and its batch row
    /// can be compacted out.
    fn finish_iteration(
        &mut self,
        config: &FactorizerConfig,
        similarity: f32,
        iteration: usize,
        deterministic: bool,
    ) -> bool {
        if similarity > self.best_similarity {
            self.best_similarity = similarity;
            self.best_indices.clone_from(&self.decoded);
        }

        if similarity >= config.convergence_threshold {
            self.result = Some(FactorizationResult {
                indices: self.decoded.clone(),
                similarity,
                iterations: iteration,
                converged: true,
                limit_cycle: false,
            });
            return true;
        }

        // Limit-cycle detection: the same decoded tuple recurring within the window
        // without reaching the threshold (deterministic dynamics only).
        if deterministic {
            if self
                .history
                .iter()
                .rev()
                .take(config.limit_cycle_window)
                .any(|h| h == &self.decoded)
            {
                self.result = Some(FactorizationResult {
                    indices: self.best_indices.clone(),
                    similarity: self.best_similarity,
                    iterations: config.max_iterations,
                    converged: false,
                    limit_cycle: true,
                });
                return true;
            }
            self.history.push(self.decoded.clone());
            if self.history.len() > config.limit_cycle_window * 4 {
                self.history.remove(0);
            }
        }

        if config.stochasticity.decay != 1.0 {
            self.sim_sigma *= config.stochasticity.decay;
            self.proj_sigma *= config.stochasticity.decay;
            self.sim_noise = BoundedNoise::for_sigma(self.sim_sigma);
            self.proj_noise = BoundedNoise::for_sigma(self.proj_sigma);
        }
        false
    }

    /// Extracts the query's result, leaving the state ready for [`QueryState::reset`].
    fn take_result(&mut self, max_iterations: usize) -> FactorizationResult {
        self.result.take().unwrap_or_else(|| FactorizationResult {
            indices: self.best_indices.clone(),
            similarity: self.best_similarity,
            iterations: max_iterations,
            converged: false,
            limit_cycle: false,
        })
    }
}

/// Caller-owned scratch for the resonator engines: every batch matrix, sign plane and
/// bookkeeping vector the iteration touches, reused across calls so a steady-state
/// serving loop allocates nothing in the factorization stage beyond the returned
/// [`FactorizationResult`]s themselves.
///
/// One scratch serves both engines and any sequence of shapes — buffers are reshaped
/// per call (`ensure_shape` keeps the backing storage when the shape repeats). The
/// scratch carries no query state across calls; using a fresh `FactorizerScratch`
/// yields bitwise-identical results, which is what the allocating entry points do.
#[derive(Debug, Default)]
pub struct FactorizerScratch {
    // Shared bookkeeping.
    states: Vec<QueryState>,
    order: Vec<usize>,
    survivors: Vec<usize>,
    decoded_rows: Vec<usize>,
    sims: HvMatrix,
    // Dense engine.
    query_q: HvMatrix,
    estimates: Vec<HvMatrix>,
    unbound: HvMatrix,
    work: HvMatrix,
    projected: HvMatrix,
    rebound: HvMatrix,
    gather_tmp: HvMatrix,
    // Packed engine.
    query_bits: BitMatrix,
    estimates_bits: Vec<BitMatrix>,
    unbound_bits: BitMatrix,
    rebound_bits: BitMatrix,
    factor_bits: BitMatrix,
    init_bits: BitMatrix,
    proj_acc: Vec<f32>,
    gather_tmp_bits: BitMatrix,
    // Cleanup (decode polish): candidate ordering / partial-distance buffers of the
    // indexed cleanup plus the per-factor result rows, reused across decode calls.
    cleanup: CleanupScratch,
    cleanup_results: Vec<(usize, f32)>,
}

impl FactorizerScratch {
    /// Packs `query_q` into `query_bits`, reporting whether it was exactly bipolar.
    fn pack_query(&mut self) -> bool {
        self.query_bits.pack_from(&self.query_q)
    }

    /// The cleanup scratch and result buffer, borrowed together for the
    /// scratch-reusing cleanup entry points
    /// ([`cogsys_vsa::Codebook::cleanup_batch_bits_into`]).
    pub fn cleanup_buffers(&mut self) -> (&mut CleanupScratch, &mut Vec<(usize, f32)>) {
        (&mut self.cleanup, &mut self.cleanup_results)
    }

    /// Pre-sizes every packed-engine buffer for a decode of up to `rows`
    /// queries of dimension `dim` against `num_factors` codebooks of at most
    /// `max_codebook_rows` rows each — the shapes a compiled solve plan fixes
    /// up front — so the steady-state serving loop never reallocates scratch
    /// mid-stream. `ensure_shape` / `resize` within these bounds reuse the
    /// backing storage (buffers are never shrunk), which
    /// [`FactorizerScratch::packed_capacity_fingerprint`] lets callers assert.
    pub fn reserve_packed(
        &mut self,
        rows: usize,
        dim: usize,
        num_factors: usize,
        max_codebook_rows: usize,
    ) {
        if rows == 0 || dim == 0 {
            return;
        }
        self.states.reserve(rows.saturating_sub(self.states.len()));
        self.order.reserve(rows.saturating_sub(self.order.len()));
        self.survivors
            .reserve(rows.saturating_sub(self.survivors.len()));
        self.decoded_rows
            .reserve(rows.saturating_sub(self.decoded_rows.len()));
        self.sims.ensure_shape(rows, max_codebook_rows.max(1));
        self.query_bits.ensure_shape(rows, dim);
        if self.estimates_bits.len() < num_factors {
            self.estimates_bits
                .resize_with(num_factors, BitMatrix::default);
        }
        for est in self.estimates_bits.iter_mut().take(num_factors) {
            est.ensure_shape(rows, dim);
        }
        self.unbound_bits.ensure_shape(rows, dim);
        self.rebound_bits.ensure_shape(rows, dim);
        self.factor_bits.ensure_shape(rows, dim);
        self.init_bits.ensure_shape(1, dim);
        self.gather_tmp_bits.ensure_shape(rows, dim);
        let proj = cogsys_vsa::packed::PROJ_LANE_ROWS * dim;
        self.proj_acc
            .reserve(proj.saturating_sub(self.proj_acc.len()));
        self.cleanup.reserve_queries(rows);
        self.cleanup_results
            .reserve(rows.saturating_sub(self.cleanup_results.len()));
    }

    /// Capacities of every packed-engine buffer, in a fixed order — equality of
    /// two fingerprints straddling a stream of decode calls proves the calls
    /// allocated no scratch (capacities only ever grow).
    pub fn packed_capacity_fingerprint(&self) -> Vec<usize> {
        let mut fp = vec![
            self.states.capacity(),
            self.order.capacity(),
            self.survivors.capacity(),
            self.decoded_rows.capacity(),
            self.sims.capacity(),
            self.query_bits.word_capacity(),
            self.unbound_bits.word_capacity(),
            self.rebound_bits.word_capacity(),
            self.factor_bits.word_capacity(),
            self.init_bits.word_capacity(),
            self.gather_tmp_bits.word_capacity(),
            self.proj_acc.capacity(),
            self.cleanup.best_capacity(),
            self.cleanup_results.capacity(),
            self.estimates_bits.capacity(),
        ];
        fp.extend(self.estimates_bits.iter().map(BitMatrix::word_capacity));
        fp
    }
}

impl Factorizer {
    /// Creates a factorizer with the given configuration, instantiating the backend the
    /// configuration names.
    ///
    /// # Panics
    /// Panics if the configuration fails [`FactorizerConfig::validate`]; configurations
    /// are programmer-supplied constants, so an invalid one is a bug at the call site.
    pub fn new(config: FactorizerConfig) -> Self {
        let backend = config.backend.create();
        Self::with_backend(config, backend)
    }

    /// Creates a factorizer running on an explicit (possibly shared) backend instance.
    ///
    /// # Panics
    /// Panics if the configuration fails [`FactorizerConfig::validate`].
    pub fn with_backend(config: FactorizerConfig, backend: Arc<dyn VsaBackend>) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid factorizer configuration: {msg}");
        }
        Self { config, backend }
    }

    /// Returns the configuration this factorizer runs with.
    pub fn config(&self) -> &FactorizerConfig {
        &self.config
    }

    /// The execution backend the batch kernels run on.
    pub fn backend(&self) -> &Arc<dyn VsaBackend> {
        &self.backend
    }

    /// Factorizes `query` against the codebooks in `set`.
    ///
    /// The initial estimate for each factor is the (unnormalised) superposition of all
    /// its codevectors, following the resonator-network convention: the search starts
    /// from "every candidate in superposition" and sharpens each factor in parallel.
    ///
    /// One value is drawn from `rng` to seed the query's private noise stream, so a
    /// sequence of `factorize` calls consumes `rng` exactly like one
    /// [`Factorizer::factorize_batch`] call over the same queries.
    ///
    /// # Errors
    /// Propagates [`VsaError`] for dimension mismatches between the query and the
    /// codebooks.
    pub fn factorize<R: Rng + ?Sized>(
        &self,
        set: &CodebookSet,
        query: &Hypervector,
        rng: &mut R,
    ) -> Result<FactorizationResult, VsaError> {
        let queries = HvMatrix::from_hypervector(query);
        let mut streams = [StdRng::seed_from_u64(rng.next_u64())];
        let mut results = self.factorize_matrix(set, &queries, &mut streams)?;
        Ok(results.pop().expect("one query row yields one result"))
    }

    /// Factorizes a batch of queries in one pass over the batch kernels.
    ///
    /// Returns one [`FactorizationResult`] per query, in order, identical to what
    /// per-query [`Factorizer::factorize`] calls with the same `rng` would produce.
    ///
    /// # Errors
    /// Propagates [`VsaError`] for dimension mismatches.
    pub fn factorize_batch<R: Rng + ?Sized>(
        &self,
        set: &CodebookSet,
        queries: &[Hypervector],
        rng: &mut R,
    ) -> Result<Vec<FactorizationResult>, VsaError> {
        let matrix = HvMatrix::from_rows(queries)?;
        let mut streams: Vec<StdRng> = queries
            .iter()
            .map(|_| StdRng::seed_from_u64(rng.next_u64()))
            .collect();
        self.factorize_matrix(set, &matrix, &mut streams)
    }

    /// The batched resonator engine: factorizes every row of `queries`, driving noise
    /// for row `q` from `streams[q]`.
    ///
    /// This is the lowest-level entry point; [`Factorizer::factorize`] and
    /// [`Factorizer::factorize_batch`] are thin wrappers around it.
    ///
    /// Two execution strategies share the same per-query dynamics:
    ///
    /// * a **bit-packed** engine (backend with a packed fast path, Hadamard binding,
    ///   FP32 precision, exactly-bipolar queries and codebooks) that keeps the factor
    ///   estimates as sign planes — unbinding is word-wise XOR and the similarity step
    ///   is popcount — and only round-trips through `f32` for the weighted projection;
    /// * the dense engine for everything else.
    ///
    /// Both compact converged rows out of the batch with a gather (scatter happens at
    /// result assembly), so early-converging queries stop consuming kernel lanes.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when `queries.dim()` differs from the
    /// codebook dimension or `streams.len() != queries.rows()`.
    pub fn factorize_matrix(
        &self,
        set: &CodebookSet,
        queries: &HvMatrix,
        streams: &mut [StdRng],
    ) -> Result<Vec<FactorizationResult>, VsaError> {
        self.factorize_matrix_scratch(set, queries, streams, &mut FactorizerScratch::default())
    }

    /// [`Factorizer::factorize_matrix`] with **caller-owned scratch**: all batch
    /// matrices, sign planes and per-query state live in `scratch` and are reused
    /// across calls, so a steady-state serving loop allocates nothing in the
    /// factorization stage. Results are identical to the allocating entry point.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when `queries.dim()` differs from the
    /// codebook dimension or `streams.len() != queries.rows()`.
    pub fn factorize_matrix_scratch(
        &self,
        set: &CodebookSet,
        queries: &HvMatrix,
        streams: &mut [StdRng],
        scratch: &mut FactorizerScratch,
    ) -> Result<Vec<FactorizationResult>, VsaError> {
        let n = queries.rows();
        let dim = set.dim();
        if queries.dim() != dim && n > 0 {
            return Err(VsaError::DimensionMismatch {
                left: dim,
                right: queries.dim(),
            });
        }
        if streams.len() != n {
            return Err(VsaError::DimensionMismatch {
                left: n,
                right: streams.len(),
            });
        }
        if n == 0 {
            return Ok(Vec::new());
        }
        let precision = self.config.precision;

        // Quantized queries (the factorization runs at the configured precision).
        scratch.query_q.copy_from(queries);
        for q in 0..n {
            fake_quantize_slice(scratch.query_q.row_mut(q), precision);
        }

        // Packed fast path (see [`Factorizer::packed_pipeline`]). FP32 only: lower
        // precisions quantize the projected estimate *before* the sign threshold,
        // which the packed pipeline skips, and the fast path must stay
        // decision-identical to the dense engine.
        if self.packed_pipeline(set) && scratch.pack_query() {
            return self.factorize_matrix_packed(
                set,
                streams,
                scratch,
                WordSpec::for_dim(dim),
                FusionMode::resolve_env(),
            );
        }

        self.factorize_matrix_dense(set, streams, scratch)
    }

    /// Returns `true` when factorizing against `set` runs the bit-packed resonator
    /// engine: Hadamard binding, FP32 precision, a backend with a packed fast path,
    /// and cached sign planes on every factor codebook. Callers that already hold
    /// packed queries can then stay in sign planes end to end via
    /// [`Factorizer::factorize_matrix_bits`].
    pub fn packed_pipeline(&self, set: &CodebookSet) -> bool {
        self.config.precision == Precision::Fp32
            && set.binding() == BindingOp::Hadamard
            && self.backend.as_packed().is_some()
            && set.all_packed()
    }

    /// [`Factorizer::factorize_matrix`] with **bit-packed** queries: the entry point
    /// for pipelines that already hold the query batch as sign planes (e.g. a
    /// packed-encoded scene batch), skipping the per-call pack of the dense path.
    ///
    /// On a packed-capable configuration ([`Factorizer::packed_pipeline`]) the bits
    /// feed the packed engine directly; otherwise the queries are unpacked once and
    /// the dense engine runs. Results are identical to calling
    /// [`Factorizer::factorize_matrix`] on the unpacked queries.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when `queries.dim()` differs from the
    /// codebook dimension or `streams.len() != queries.rows()`.
    pub fn factorize_matrix_bits(
        &self,
        set: &CodebookSet,
        queries: &BitMatrix,
        streams: &mut [StdRng],
    ) -> Result<Vec<FactorizationResult>, VsaError> {
        self.factorize_matrix_bits_scratch(set, queries, streams, &mut FactorizerScratch::default())
    }

    /// [`Factorizer::factorize_matrix_bits`] with **caller-owned scratch** (see
    /// [`Factorizer::factorize_matrix_scratch`]): the allocation-free entry point of
    /// the end-to-end packed serving path — a packed-encoded scene batch flows in as
    /// sign planes and every buffer of the resonator loop is reused across calls.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when `queries.dim()` differs from the
    /// codebook dimension or `streams.len() != queries.rows()`.
    pub fn factorize_matrix_bits_scratch(
        &self,
        set: &CodebookSet,
        queries: &BitMatrix,
        streams: &mut [StdRng],
        scratch: &mut FactorizerScratch,
    ) -> Result<Vec<FactorizationResult>, VsaError> {
        self.factorize_matrix_bits_scratch_spec(
            set,
            queries,
            streams,
            scratch,
            WordSpec::for_dim(set.dim()),
        )
    }

    /// [`Factorizer::factorize_matrix_bits_scratch`] with the kernel
    /// specialization pre-resolved by the caller (a compiled solve plan). Passing
    /// [`WordSpec::Generic`] forces the runtime-length kernels; any other spec is
    /// only honoured where it matches the operands, so results are identical for
    /// every spec value — only the codegen of the inner loops differs.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when `queries.dim()` differs from the
    /// codebook dimension or `streams.len() != queries.rows()`.
    pub fn factorize_matrix_bits_scratch_spec(
        &self,
        set: &CodebookSet,
        queries: &BitMatrix,
        streams: &mut [StdRng],
        scratch: &mut FactorizerScratch,
        spec: WordSpec,
    ) -> Result<Vec<FactorizationResult>, VsaError> {
        self.factorize_matrix_bits_scratch_plan(
            set,
            queries,
            streams,
            scratch,
            spec,
            FusionMode::resolve_env(),
        )
    }

    /// [`Factorizer::factorize_matrix_bits_scratch_spec`] with the iteration
    /// [`FusionMode`] also pre-resolved by the caller (a compiled solve plan).
    /// `Fused` runs the single-pass resonator mega-kernel
    /// ([`cogsys_vsa::PackedBackend::resonate_step_fused_into`]); `Split` runs
    /// the reference three-kernel sequence. Both paths are decision-identical —
    /// same similarities, sign bits and rng-stream consumption — so the mode
    /// only selects codegen/dataflow, never results.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when `queries.dim()` differs from the
    /// codebook dimension or `streams.len() != queries.rows()`.
    pub fn factorize_matrix_bits_scratch_plan(
        &self,
        set: &CodebookSet,
        queries: &BitMatrix,
        streams: &mut [StdRng],
        scratch: &mut FactorizerScratch,
        spec: WordSpec,
        fusion: FusionMode,
    ) -> Result<Vec<FactorizationResult>, VsaError> {
        let n = queries.rows();
        if queries.dim() != set.dim() && n > 0 {
            return Err(VsaError::DimensionMismatch {
                left: set.dim(),
                right: queries.dim(),
            });
        }
        if streams.len() != n {
            return Err(VsaError::DimensionMismatch {
                left: n,
                right: streams.len(),
            });
        }
        if n == 0 {
            return Ok(Vec::new());
        }
        if self.packed_pipeline(set) {
            scratch.query_bits.copy_from(queries);
            return self.factorize_matrix_packed(set, streams, scratch, spec, fusion);
        }
        // Unpacked fallback (non-Hadamard binding, reduced precision, dense backend):
        // ±1 values survive quantization at every precision, so the dense engine sees
        // exactly the queries the caller packed.
        queries.unpack_into(&mut scratch.query_q);
        self.factorize_matrix_dense(set, streams, scratch)
    }

    /// Dense (`f32`) resonator engine with converged-row compaction. Reads the
    /// already-quantized query batch from `scratch.query_q` (it shrinks in place as
    /// rows converge) and reuses every other buffer from `scratch`.
    // The row loops index parallel structures (states, streams, matrix rows) through
    // the same slot; iterator-zip rewrites would fight the borrow checker for no
    // clarity.
    #[allow(clippy::needless_range_loop)]
    fn factorize_matrix_dense(
        &self,
        set: &CodebookSet,
        streams: &mut [StdRng],
        scratch: &mut FactorizerScratch,
    ) -> Result<Vec<FactorizationResult>, VsaError> {
        let FactorizerScratch {
            states,
            order,
            survivors,
            sims,
            query_q,
            estimates,
            unbound,
            work,
            projected,
            rebound,
            gather_tmp,
            ..
        } = scratch;
        let n = query_q.rows();
        let num_factors = set.num_factors();
        let dim = set.dim();
        let backend = self.backend.as_ref();
        let precision = self.config.precision;

        // Initial estimates: bundle of every codevector in each factor, snapped to
        // bipolar so the Hadamard unbinding stays well-conditioned. The start point is
        // query-independent, hence one broadcast row per factor.
        estimates.resize_with(num_factors, HvMatrix::default);
        for (f, est) in estimates.iter_mut().enumerate() {
            let cb = set.factor(f).expect("factor index in range");
            let init = ops::majority_bundle(cb.iter()).expect("codebooks are non-empty");
            est.ensure_shape(n, dim);
            for slot in 0..n {
                est.row_mut(slot).copy_from_slice(init.values());
            }
        }

        let noise_scale = (dim as f32).sqrt();
        states.resize_with(n, QueryState::default);
        for state in states.iter_mut() {
            state.reset(&self.config, num_factors, noise_scale);
        }
        // `order[slot]` is the original query index occupying batch row `slot`;
        // finished rows are gathered out so every kernel lane always does live work.
        order.clear();
        order.extend(0..n);

        let deterministic = !self.config.stochasticity.is_enabled();

        for iteration in 1..=self.config.max_iterations {
            let rows = order.len();
            if rows == 0 {
                break;
            }

            for f in 0..num_factors {
                let cb_matrix = set.factor(f)?.matrix();

                // Step 1: unbind the contribution of every other factor's estimate.
                // Estimates are updated in place (Gauss–Seidel style), so later factors
                // in the same sweep already see the refreshed earlier factors — this is
                // the "interactive" factorization the paper describes and converges in
                // fewer iterations than a fully synchronous update.
                set.unbind_all_but_batch(backend, query_q, estimates, f, unbound, work)?;
                for slot in 0..rows {
                    fake_quantize_slice(unbound.row_mut(slot), precision);
                }

                // Step 2: similarity search against the factor codebook (one GEMM for
                // the whole batch).
                backend.similarity_matrix_into(cb_matrix, unbound, sims)?;
                for slot in 0..rows {
                    let q = order[slot];
                    if let Some(noise) = &states[q].sim_noise {
                        noise.perturb_all(sims.row_mut(slot), &mut streams[q]);
                    }
                    states[q].decoded[f] = ops::argmax(sims.row(slot)).unwrap_or(0);
                }

                // Step 3: project back into the codevector space and binarise.
                backend.project_batch_into(cb_matrix, sims, projected)?;
                for slot in 0..rows {
                    let q = order[slot];
                    if let Some(noise) = &states[q].proj_noise {
                        noise.perturb_signs(projected.row_mut(slot), &mut streams[q]);
                    }
                    fake_quantize_slice(projected.row_mut(slot), precision);
                    for (est, &v) in estimates[f]
                        .row_mut(slot)
                        .iter_mut()
                        .zip(projected.row(slot))
                    {
                        *est = if v < 0.0 { -1.0 } else { 1.0 };
                    }
                }
            }

            // Convergence check: re-bind the decoded codevectors and compare to the
            // query, batched across rows (scratch ping-pong, no allocation).
            work.ensure_shape(rows, dim);
            rebound.ensure_shape(rows, dim);
            for slot in 0..rows {
                let row_indices = &states[order[slot]].decoded;
                rebound
                    .row_mut(slot)
                    .copy_from_slice(set.factor(0)?.matrix().row(row_indices[0]));
            }
            for f in 1..num_factors {
                for slot in 0..rows {
                    work.row_mut(slot).copy_from_slice(
                        set.factor(f)?.matrix().row(states[order[slot]].decoded[f]),
                    );
                }
                backend.bind_batch_into(rebound, work, set.binding(), unbound)?;
                std::mem::swap(rebound, unbound);
            }

            survivors.clear();
            for slot in 0..rows {
                let q = order[slot];
                let similarity = cosine_rows(rebound.row(slot), query_q.row(slot));
                if !states[q].finish_iteration(&self.config, similarity, iteration, deterministic) {
                    survivors.push(slot);
                }
            }

            // Gather/scatter compaction: drop finished rows from the batch so the
            // remaining iterations run kernels over live lanes only.
            if survivors.len() < rows {
                query_q.gather_into(survivors, gather_tmp)?;
                std::mem::swap(query_q, gather_tmp);
                for est in estimates.iter_mut() {
                    est.gather_into(survivors, gather_tmp)?;
                    std::mem::swap(est, gather_tmp);
                }
                // Map surviving slots back to original query indices in place, then
                // adopt the mapped vector as the new order.
                for slot in survivors.iter_mut() {
                    *slot = order[*slot];
                }
                std::mem::swap(order, survivors);
            }
        }

        Ok(states
            .iter_mut()
            .take(n)
            .map(|state| state.take_result(self.config.max_iterations))
            .collect())
    }

    /// Bit-packed resonator engine (Hadamard binding, FP32, bipolar operands).
    ///
    /// Factor estimates live as [`BitMatrix`] sign planes: the unbind step is word-wise
    /// XOR against the packed query, the similarity step is popcount (exactly the
    /// integer dot products the dense GEMM produces on bipolar inputs), the weighted
    /// projection is the fused packed kernel
    /// [`cogsys_vsa::packed::PackedBackend::project_signs_packed_into`] (noise and
    /// sign threshold included, written straight into the estimate planes), and the
    /// rebind convergence check XORs gathered codebook rows — no dense estimate or
    /// projection matrix exists anywhere in this engine. Decisions (argmax,
    /// convergence, limit cycles) are identical to the dense engine on the same noise
    /// streams.
    #[allow(clippy::needless_range_loop)]
    fn factorize_matrix_packed(
        &self,
        set: &CodebookSet,
        streams: &mut [StdRng],
        scratch: &mut FactorizerScratch,
        spec: WordSpec,
        fusion: FusionMode,
    ) -> Result<Vec<FactorizationResult>, VsaError> {
        let FactorizerScratch {
            states,
            order,
            survivors,
            decoded_rows,
            sims,
            query_bits,
            estimates_bits: estimates,
            unbound_bits,
            rebound_bits,
            factor_bits,
            init_bits,
            proj_acc,
            gather_tmp_bits,
            ..
        } = scratch;
        let n = query_bits.rows();
        let num_factors = set.num_factors();
        let dim = set.dim();
        let backend = self.backend.as_ref();
        let packed = backend
            .as_packed()
            .expect("packed engine requires a packed backend");

        estimates.resize_with(num_factors, BitMatrix::default);
        for (f, est) in estimates.iter_mut().enumerate() {
            let cb = set.factor(f).expect("factor index in range");
            let init = ops::majority_bundle(cb.iter()).expect("codebooks are non-empty");
            let row = HvMatrix::from_hypervector(&init);
            assert!(
                init_bits.pack_from(&row),
                "majority bundle output is bipolar"
            );
            init_bits
                .broadcast_row_into(0, n, est)
                .expect("broadcast of row 0");
        }

        let noise_scale = (dim as f32).sqrt();
        states.resize_with(n, QueryState::default);
        for state in states.iter_mut() {
            state.reset(&self.config, num_factors, noise_scale);
        }
        order.clear();
        order.extend(0..n);

        let deterministic = !self.config.stochasticity.is_enabled();

        for iteration in 1..=self.config.max_iterations {
            let rows = order.len();
            if rows == 0 {
                break;
            }

            for f in 0..num_factors {
                let factor = set.factor(f)?;
                let cb_bits = factor
                    .packed()
                    .expect("packed engine requires packed codebooks");

                if fusion == FusionMode::Fused {
                    // Fused mega-kernel: unbind, popcount similarity and weighted
                    // sign projection in one tiled pass over the codebook sign
                    // planes per 8-query lane block — each plane word is loaded
                    // once per iteration instead of three times, and no full-batch
                    // unbound plane is materialized. The hook runs the exact
                    // per-row work of the split steps below (similarity perturb +
                    // argmax decode, then projection perturb), in ascending row
                    // order per lane block; per-query streams are private, so the
                    // consumed noise positions match the split path draw for draw.
                    packed.resonate_step_fused_spec_into(
                        spec,
                        cb_bits,
                        query_bits,
                        estimates,
                        f,
                        unbound_bits,
                        sims,
                        proj_acc,
                        |phase, slot, row| {
                            let q = order[slot];
                            match phase {
                                ResonatePhase::Similarity => {
                                    if let Some(noise) = &states[q].sim_noise {
                                        noise.perturb_all(row, &mut streams[q]);
                                    }
                                    states[q].decoded[f] = ops::argmax(row).unwrap_or(0);
                                }
                                ResonatePhase::Projection => {
                                    if let Some(noise) = &states[q].proj_noise {
                                        noise.perturb_signs_spec(spec, row, &mut streams[q]);
                                    }
                                }
                            }
                        },
                    );
                    continue;
                }

                // Split reference path (`COGSYS_FUSION=split` / plan decision):
                // bitwise-identical to the fused kernel, kept as the A/B twin.

                // Step 1 (XOR): unbind every other factor's estimate from the query.
                unbound_bits.copy_from(query_bits);
                for (g, est) in estimates.iter().enumerate() {
                    if g != f {
                        unbound_bits.xor_assign(est)?;
                    }
                }

                // Step 2 (popcount): similarity search against the factor codebook,
                // through the plan's word-count monomorphization when one applies.
                packed.similarity_matrix_packed_spec_into(spec, cb_bits, unbound_bits, sims);
                for slot in 0..rows {
                    let q = order[slot];
                    if let Some(noise) = &states[q].sim_noise {
                        noise.perturb_all(sims.row_mut(slot), &mut streams[q]);
                    }
                    states[q].decoded[f] = ops::argmax(sims.row(slot)).unwrap_or(0);
                }

                // Step 3 (fused): packed weighted projection — per-dimension f32
                // accumulators driven word-wise over the codebook sign planes, with
                // the per-query noise injection and sign threshold fused, written
                // straight back into the estimate plane. Accumulation order matches
                // the dense `project_batch_into` bitwise, so decisions are identical
                // to the dense engine on the same noise streams.
                packed.project_signs_packed_spec_into(
                    spec,
                    cb_bits,
                    sims,
                    |slot, acc| {
                        let q = order[slot];
                        if let Some(noise) = &states[q].proj_noise {
                            noise.perturb_signs_spec(spec, acc, &mut streams[q]);
                        }
                    },
                    proj_acc,
                    &mut estimates[f],
                );
            }

            // Convergence check: XOR the decoded codevector planes together and map
            // Hamming distance to the rebind cosine.
            for f in 0..num_factors {
                let cb_bits = set
                    .factor(f)?
                    .packed()
                    .expect("packed engine requires packed codebooks");
                decoded_rows.clear();
                decoded_rows.extend(order.iter().map(|&q| states[q].decoded[f]));
                if f == 0 {
                    cb_bits.gather_into(decoded_rows, rebound_bits)?;
                } else {
                    cb_bits.gather_into(decoded_rows, factor_bits)?;
                    rebound_bits.xor_assign(factor_bits)?;
                }
            }

            survivors.clear();
            for slot in 0..rows {
                let q = order[slot];
                let similarity = rebound_bits.cosine_rows(slot, query_bits, slot);
                if !states[q].finish_iteration(&self.config, similarity, iteration, deterministic) {
                    survivors.push(slot);
                }
            }

            if survivors.len() < rows {
                query_bits.gather_into(survivors, gather_tmp_bits)?;
                std::mem::swap(query_bits, gather_tmp_bits);
                for est in estimates.iter_mut() {
                    est.gather_into(survivors, gather_tmp_bits)?;
                    std::mem::swap(est, gather_tmp_bits);
                }
                for slot in survivors.iter_mut() {
                    *slot = order[*slot];
                }
                std::mem::swap(order, survivors);
            }
        }

        Ok(states
            .iter_mut()
            .take(n)
            .map(|state| state.take_result(self.config.max_iterations))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StochasticityConfig;
    use cogsys_vsa::codebook::BindingOp;
    use cogsys_vsa::{rng, BackendKind, CodebookSet, Precision};
    use proptest::prelude::*;

    fn standard_set(seed: u64, sizes: &[usize], dim: usize) -> (CodebookSet, rand::rngs::StdRng) {
        let mut r = rng(seed);
        let set = CodebookSet::random(sizes, dim, BindingOp::Hadamard, &mut r);
        (set, r)
    }

    #[test]
    fn clean_query_is_factorized_exactly() {
        let (set, mut r) = standard_set(100, &[10, 10, 10], 1024);
        let query = set.bind_indices(&[2, 7, 4]).unwrap();
        let f = Factorizer::default();
        let result = f.factorize(&set, &query, &mut r).unwrap();
        assert_eq!(result.indices, vec![2, 7, 4]);
        assert!(result.converged);
        assert!(result.similarity > 0.9);
    }

    #[test]
    fn noisy_query_is_factorized_correctly() {
        let (set, mut r) = standard_set(101, &[8, 8, 8], 1024);
        let clean = set.bind_indices(&[1, 6, 3]).unwrap();
        let noisy = ops::flip_noise(&clean, 0.1, &mut r);
        let f = Factorizer::default();
        let result = f.factorize(&set, &noisy, &mut r).unwrap();
        assert_eq!(result.indices, vec![1, 6, 3]);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let (set, mut r) = standard_set(102, &[4, 4], 256);
        let query = Hypervector::zeros(128);
        let f = Factorizer::default();
        assert!(f.factorize(&set, &query, &mut r).is_err());
    }

    #[test]
    fn without_stochasticity_still_converges_on_easy_problems() {
        let (set, mut r) = standard_set(103, &[6, 6], 512);
        let query = set.bind_indices(&[5, 0]).unwrap();
        let f = Factorizer::new(FactorizerConfig::without_stochasticity());
        let result = f.factorize(&set, &query, &mut r).unwrap();
        assert_eq!(result.indices, vec![5, 0]);
        assert!(result.converged);
    }

    #[test]
    fn stochasticity_reduces_iterations_on_hard_problems() {
        // Paper claim (Tab. VIII context, Sec. IV-B): noise injection speeds up
        // convergence. Compare average iteration counts over several hard queries
        // (small dimension relative to the product-space size).
        let mut iters_with = 0usize;
        let mut iters_without = 0usize;
        let trials = 12;
        for t in 0..trials {
            let (set, mut r) = standard_set(200 + t, &[12, 12, 12], 256);
            let query = set.bind_indices(&[3, 9, 11]).unwrap();

            let with = Factorizer::new(FactorizerConfig::default())
                .factorize(&set, &query, &mut r)
                .unwrap();
            let without = Factorizer::new(FactorizerConfig::without_stochasticity())
                .factorize(&set, &query, &mut r)
                .unwrap();
            iters_with += with.iterations;
            iters_without += without.iterations;
        }
        // Noise should not be dramatically worse; typically it is equal or better on
        // hard instances because the deterministic iteration gets stuck in cycles.
        assert!(
            iters_with as f64 <= iters_without as f64 * 1.5,
            "with noise: {iters_with}, without: {iters_without}"
        );
    }

    #[test]
    fn limit_cycle_detection_flags_stuck_runs() {
        // An adversarially tiny dimension with many combinations usually cannot be
        // factorized; the deterministic iteration should terminate early via limit-cycle
        // detection rather than burning the whole budget.
        let (set, mut r) = standard_set(300, &[16, 16, 16], 32);
        let query = set.bind_indices(&[0, 1, 2]).unwrap();
        let config = FactorizerConfig {
            max_iterations: 500,
            stochasticity: StochasticityConfig::disabled(),
            ..FactorizerConfig::default()
        };
        let result = Factorizer::new(config)
            .factorize(&set, &query, &mut r)
            .unwrap();
        if !result.converged {
            assert!(
                result.limit_cycle || result.iterations == 500,
                "non-converged run should be explained"
            );
        }
    }

    #[test]
    fn int8_precision_still_factorizes() {
        let (set, mut r) = standard_set(104, &[8, 8, 8], 1024);
        let query = set.bind_indices(&[7, 2, 5]).unwrap();
        let f = Factorizer::new(FactorizerConfig::default().with_precision(Precision::Int8));
        let result = f.factorize(&set, &query, &mut r).unwrap();
        assert_eq!(result.indices, vec![7, 2, 5]);
    }

    #[test]
    fn fp8_precision_still_factorizes() {
        let (set, mut r) = standard_set(105, &[8, 8, 8], 1024);
        let query = set.bind_indices(&[0, 3, 6]).unwrap();
        let f = Factorizer::new(FactorizerConfig::default().with_precision(Precision::Fp8));
        let result = f.factorize(&set, &query, &mut r).unwrap();
        assert_eq!(result.indices, vec![0, 3, 6]);
    }

    #[test]
    fn circular_convolution_binding_is_supported() {
        let mut r = rng(106);
        let set = CodebookSet::random(&[6, 6], 2048, BindingOp::CircularConvolution, &mut r);
        let query = set.bind_indices(&[4, 2]).unwrap();
        let config = FactorizerConfig {
            convergence_threshold: 0.3,
            ..FactorizerConfig::default()
        };
        let result = Factorizer::new(config)
            .factorize(&set, &query, &mut r)
            .unwrap();
        assert_eq!(result.indices, vec![4, 2]);
    }

    #[test]
    fn result_matches_helper() {
        let r = FactorizationResult {
            indices: vec![1, 2],
            similarity: 1.0,
            iterations: 1,
            converged: true,
            limit_cycle: false,
        };
        assert!(r.matches(&[1, 2]));
        assert!(!r.matches(&[2, 1]));
    }

    #[test]
    #[should_panic(expected = "invalid factorizer configuration")]
    fn invalid_config_panics_at_construction() {
        let c = FactorizerConfig {
            max_iterations: 0,
            ..FactorizerConfig::default()
        };
        let _ = Factorizer::new(c);
    }

    #[test]
    #[should_panic(expected = "invalid factorizer configuration")]
    fn negative_sigma_panics_at_construction() {
        // Regression: a negative sigma used to survive construction and explode as an
        // expect-panic deep inside the per-iteration noise call.
        let mut c = FactorizerConfig::default();
        c.stochasticity.projection_sigma = -1.0;
        let _ = Factorizer::new(c);
    }

    #[test]
    fn factorize_matrix_bits_equals_dense_queries() {
        // Pre-packed queries through the packed engine return exactly what the f32
        // entry point returns — the end-to-end packed path is a pure perf transform.
        let (set, mut r) = standard_set(408, &[8, 8, 8], 512);
        let queries: Vec<Hypervector> = [[0usize, 1, 2], [7, 6, 5], [3, 3, 3], [2, 0, 7]]
            .iter()
            .map(|t| ops::flip_noise(&set.bind_indices(t).unwrap(), 0.05, &mut r))
            .collect();
        let matrix = HvMatrix::from_rows(&queries).unwrap();
        let bits = BitMatrix::from_matrix(&matrix).unwrap();
        let factorizer =
            Factorizer::new(FactorizerConfig::default().with_backend(BackendKind::Packed));
        assert!(factorizer.packed_pipeline(&set));

        let mut s1: Vec<_> = (0..4).map(StdRng::seed_from_u64).collect();
        let mut s2: Vec<_> = (0..4).map(StdRng::seed_from_u64).collect();
        let dense = factorizer.factorize_matrix(&set, &matrix, &mut s1).unwrap();
        let packed = factorizer
            .factorize_matrix_bits(&set, &bits, &mut s2)
            .unwrap();
        assert_eq!(dense, packed);

        // Error paths: stream-count and dimension mismatches are reported.
        let mut bad: Vec<_> = (0..2).map(StdRng::seed_from_u64).collect();
        assert!(factorizer
            .factorize_matrix_bits(&set, &bits, &mut bad)
            .is_err());
        let narrow = BitMatrix::zeros(4, 128);
        let mut s3: Vec<_> = (0..4).map(StdRng::seed_from_u64).collect();
        assert!(factorizer
            .factorize_matrix_bits(&set, &narrow, &mut s3)
            .is_err());
    }

    #[test]
    fn factorize_matrix_bits_falls_back_without_packed_pipeline() {
        // On a dense backend the packed queries are unpacked once and the dense
        // engine runs; results equal the f32 entry point on the same streams.
        let (set, mut r) = standard_set(409, &[6, 6], 512);
        let query = ops::flip_noise(&set.bind_indices(&[2, 5]).unwrap(), 0.05, &mut r);
        let matrix = HvMatrix::from_hypervector(&query);
        let bits = BitMatrix::from_matrix(&matrix).unwrap();
        let factorizer =
            Factorizer::new(FactorizerConfig::default().with_backend(BackendKind::Parallel));
        assert!(!factorizer.packed_pipeline(&set));
        let mut s1 = [StdRng::seed_from_u64(9)];
        let mut s2 = [StdRng::seed_from_u64(9)];
        let dense = factorizer.factorize_matrix(&set, &matrix, &mut s1).unwrap();
        let packed = factorizer
            .factorize_matrix_bits(&set, &bits, &mut s2)
            .unwrap();
        assert_eq!(dense, packed);
        assert_eq!(dense[0].indices, vec![2, 5]);
    }

    #[test]
    fn factorize_batch_equals_per_query_factorize() {
        // The satellite regression: batching must be a pure performance transform.
        // Stochasticity stays ON — per-query noise streams make the paths identical.
        let (set, mut r) = standard_set(400, &[8, 8, 8], 512);
        let tuples = [[0usize, 1, 2], [7, 6, 5], [3, 3, 3], [2, 0, 7], [5, 4, 1]];
        let queries: Vec<Hypervector> = tuples
            .iter()
            .map(|t| {
                let clean = set.bind_indices(t).unwrap();
                ops::flip_noise(&clean, 0.05, &mut r)
            })
            .collect();
        let factorizer = Factorizer::default();

        let mut rng_batch = rng(777);
        let batch = factorizer
            .factorize_batch(&set, &queries, &mut rng_batch)
            .unwrap();

        let mut rng_single = rng(777);
        for (q, query) in queries.iter().enumerate() {
            let single = factorizer.factorize(&set, query, &mut rng_single).unwrap();
            assert_eq!(batch[q], single, "query {q}");
        }
    }

    #[test]
    fn reference_and_parallel_backends_decode_identically() {
        let (set, mut r) = standard_set(401, &[8, 8], 512);
        let query = ops::flip_noise(&set.bind_indices(&[2, 6]).unwrap(), 0.05, &mut r);
        let reference =
            Factorizer::new(FactorizerConfig::default().with_backend(BackendKind::Reference));
        let parallel =
            Factorizer::new(FactorizerConfig::default().with_backend(BackendKind::Parallel));
        let mut r1 = rng(55);
        let mut r2 = rng(55);
        let a = reference.factorize(&set, &query, &mut r1).unwrap();
        let b = parallel.factorize(&set, &query, &mut r2).unwrap();
        // Decoded indices must agree; the similarity score may differ within the
        // backends' 1e-4 cosine contract (lane-split similarity accumulation).
        assert_eq!(a.indices, b.indices);
        assert_eq!(a.converged, b.converged);
        assert!((a.similarity - b.similarity).abs() < 1e-4);
    }

    #[test]
    fn batch_of_empty_queries_is_empty() {
        let (set, mut r) = standard_set(402, &[4, 4], 128);
        let results = Factorizer::default()
            .factorize_batch(&set, &[], &mut r)
            .unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn packed_backend_decodes_identically_to_reference() {
        // The packed resonator's similarity values are the exact integer dot products,
        // so on the same noise streams its decisions match the dense engines.
        let (set, mut r) = standard_set(403, &[8, 8, 8], 1024);
        let query = ops::flip_noise(&set.bind_indices(&[5, 1, 7]).unwrap(), 0.05, &mut r);
        let reference =
            Factorizer::new(FactorizerConfig::default().with_backend(BackendKind::Reference));
        let packed = Factorizer::new(FactorizerConfig::default().with_backend(BackendKind::Packed));
        let mut r1 = rng(66);
        let mut r2 = rng(66);
        let a = reference.factorize(&set, &query, &mut r1).unwrap();
        let b = packed.factorize(&set, &query, &mut r2).unwrap();
        assert_eq!(a.indices, b.indices);
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.iterations, b.iterations);
        assert!((a.similarity - b.similarity).abs() < 1e-4);
        assert_eq!(a.indices, vec![5, 1, 7]);
    }

    #[test]
    fn packed_backend_batch_equals_per_query() {
        // Batching on the packed engine is a pure performance transform too.
        let (set, mut r) = standard_set(404, &[8, 8], 512);
        let tuples = [[0usize, 1], [7, 6], [3, 3], [2, 0]];
        let queries: Vec<Hypervector> = tuples
            .iter()
            .map(|t| ops::flip_noise(&set.bind_indices(t).unwrap(), 0.08, &mut r))
            .collect();
        let factorizer =
            Factorizer::new(FactorizerConfig::default().with_backend(BackendKind::Packed));
        let mut rng_batch = rng(888);
        let batch = factorizer
            .factorize_batch(&set, &queries, &mut rng_batch)
            .unwrap();
        let mut rng_single = rng(888);
        for (q, query) in queries.iter().enumerate() {
            let single = factorizer.factorize(&set, query, &mut rng_single).unwrap();
            assert_eq!(batch[q], single, "query {q}");
        }
    }

    #[test]
    fn compaction_handles_mixed_convergence_speeds() {
        // Clean queries converge in a couple of iterations while noisy ones keep
        // going, so the converged rows are gathered out mid-run; results must still
        // equal the per-query path for every row, in the original order.
        let (set, mut r) = standard_set(405, &[10, 10], 1024);
        let queries: Vec<Hypervector> = (0..6)
            .map(|i| {
                let clean = set.bind_indices(&[i, 9 - i]).unwrap();
                // Alternate clean and heavily noised rows.
                if i % 2 == 0 {
                    clean
                } else {
                    ops::flip_noise(&clean, 0.25, &mut r)
                }
            })
            .collect();
        for kind in BackendKind::ALL {
            let factorizer = Factorizer::new(FactorizerConfig::default().with_backend(kind));
            let mut rng_batch = rng(999);
            let batch = factorizer
                .factorize_batch(&set, &queries, &mut rng_batch)
                .unwrap();
            let mut rng_single = rng(999);
            for (q, query) in queries.iter().enumerate() {
                let single = factorizer.factorize(&set, query, &mut rng_single).unwrap();
                assert_eq!(batch[q], single, "{kind} query {q}");
            }
            // The clean rows really do converge early (compaction was exercised).
            assert!(batch[0].converged && batch[0].iterations < 50, "{kind}");
        }
    }

    #[test]
    fn packed_backend_falls_back_for_circular_binding() {
        // HRR/circular binding has no packed reduction; BackendKind::Packed must
        // transparently produce the dense backend's results.
        let mut r = rng(406);
        let set = CodebookSet::random(&[6, 6], 2048, BindingOp::CircularConvolution, &mut r);
        let query = set.bind_indices(&[4, 2]).unwrap();
        let config = FactorizerConfig {
            convergence_threshold: 0.3,
            ..FactorizerConfig::default()
        };
        let mut r1 = rng(21);
        let mut r2 = rng(21);
        let a = Factorizer::new(config.clone().with_backend(BackendKind::Parallel))
            .factorize(&set, &query, &mut r1)
            .unwrap();
        let b = Factorizer::new(config.with_backend(BackendKind::Packed))
            .factorize(&set, &query, &mut r2)
            .unwrap();
        assert_eq!(a.indices, b.indices);
        assert_eq!(a.indices, vec![4, 2]);
    }

    #[test]
    fn packed_backend_supports_reduced_precision_via_dense_engine() {
        // Sub-FP32 precisions quantize the projected estimate before the sign
        // threshold, so the packed fast path steps aside and the dense engine runs.
        let (set, mut r) = standard_set(407, &[8, 8, 8], 1024);
        let query = set.bind_indices(&[7, 2, 5]).unwrap();
        let f = Factorizer::new(
            FactorizerConfig::default()
                .with_precision(Precision::Int8)
                .with_backend(BackendKind::Packed),
        );
        let result = f.factorize(&set, &query, &mut r).unwrap();
        assert_eq!(result.indices, vec![7, 2, 5]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn prop_random_queries_factorize(seed in 0u64..30, i0 in 0usize..6, i1 in 0usize..6) {
            let (set, mut r) = standard_set(seed, &[6, 6], 1024);
            let query = set.bind_indices(&[i0, i1]).unwrap();
            let result = Factorizer::default().factorize(&set, &query, &mut r).unwrap();
            prop_assert_eq!(result.indices, vec![i0, i1]);
        }

        /// The word-level early-out in `perturb_signs` is bitwise-equal to the
        /// element-wise reference rule — identical output values AND identical rng
        /// stream position afterwards — on accumulators engineered so some whole
        /// 64-dim blocks provably exceed the amplitude (skipped), some sit entirely
        /// below it (fully sampled), and some mix regimes, across non-multiple-of-64
        /// lengths and sign-flip/NaN edge cases.
        #[test]
        fn prop_early_out_noise_matches_elementwise(
            seed in 0u64..200,
            len_sel in 0usize..5,
            sigma_centi in 1u32..80,
        ) {
            let len = [1usize, 63, 64, 130, 321][len_sel];
            let sigma = sigma_centi as f32 / 100.0;
            let noise = BoundedNoise::for_sigma(sigma).unwrap();
            let a = noise.amplitude();
            let mut r = cogsys_vsa::rng(seed);
            let mut values: Vec<f32> = (0..len)
                .map(|j| {
                    // Three regimes, chosen per 64-block so whole blocks land above
                    // the amplitude: block 0 small, block 1 large, rest mixed.
                    let scale = match (j / 64 + seed as usize) % 3 {
                        0 => a * 0.5,
                        1 => a * 4.0,
                        _ => a * 2.0,
                    };
                    (r.gen::<f32>() - 0.5) * 2.0 * scale
                })
                .collect();
            if len > 2 {
                values[0] = a; // boundary: |v| == amplitude still draws
                values[1] = f32::NAN; // NaN never draws on either path
                values[2] = -0.0;
            }
            let mut fast = values.clone();
            let mut slow = values;
            let mut rng_fast = StdRng::seed_from_u64(seed ^ 0xE0);
            let mut rng_slow = StdRng::seed_from_u64(seed ^ 0xE0);
            noise.perturb_signs(&mut fast, &mut rng_fast);
            noise.perturb_signs_elementwise(&mut slow, &mut rng_slow);
            let fast_bits: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
            let slow_bits: Vec<u32> = slow.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(fast_bits, slow_bits);
            // Same number of draws consumed: the streams stay in lockstep.
            prop_assert_eq!(rng_fast.gen::<u64>(), rng_slow.gen::<u64>());
        }
    }
}
