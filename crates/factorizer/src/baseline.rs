//! Brute-force product-codebook baseline.
//!
//! This is the scheme the paper's factorization strategy replaces: materialise the full
//! `M^F`-entry product codebook and answer each query by exhaustive similarity search.
//! It is retained as (a) a correctness oracle for the factorizer tests and (b) the
//! baseline side of the Fig. 8 memory / runtime comparison.

use cogsys_vsa::codebook::{CodebookSet, ProductCodebook};
use cogsys_vsa::{Hypervector, VsaError};
use serde::{Deserialize, Serialize};

/// Outcome of a brute-force product-codebook search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BruteForceOutcome {
    /// Decoded per-factor indices.
    pub indices: Vec<usize>,
    /// Cosine similarity of the best product vector to the query.
    pub similarity: f32,
    /// Number of product vectors examined (always the full product-space size).
    pub candidates_examined: usize,
}

/// Brute-force factorizer over an expanded [`ProductCodebook`].
#[derive(Debug, Clone)]
pub struct BruteForceFactorizer {
    product: ProductCodebook,
}

impl BruteForceFactorizer {
    /// Expands the product codebook for `set`.
    ///
    /// # Errors
    /// Returns [`VsaError::InvalidParameter`] when the product space exceeds the
    /// expansion guard of [`ProductCodebook::MAX_COMBINATIONS`].
    pub fn new(set: &CodebookSet) -> Result<Self, VsaError> {
        Ok(Self {
            product: ProductCodebook::expand(set)?,
        })
    }

    /// Number of entries in the expanded codebook.
    pub fn codebook_len(&self) -> usize {
        self.product.len()
    }

    /// Memory footprint of the expanded codebook in bytes.
    pub fn footprint_bytes(&self, bytes_per_element: usize) -> usize {
        self.product.footprint_bytes(bytes_per_element)
    }

    /// Decodes a query by exhaustive search.
    ///
    /// # Errors
    /// Propagates dimension mismatches from the underlying similarity computation.
    pub fn decode(&self, query: &Hypervector) -> Result<BruteForceOutcome, VsaError> {
        let (indices, similarity) = self.product.brute_force_search(query)?;
        Ok(BruteForceOutcome {
            indices,
            similarity,
            candidates_examined: self.product.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Factorizer, FactorizerConfig};
    use cogsys_vsa::codebook::BindingOp;
    use cogsys_vsa::{ops, rng, CodebookSet};

    #[test]
    fn brute_force_decodes_exactly() {
        let mut r = rng(50);
        let set = CodebookSet::random(&[4, 5, 3], 512, BindingOp::Hadamard, &mut r);
        let bf = BruteForceFactorizer::new(&set).unwrap();
        assert_eq!(bf.codebook_len(), 60);
        let q = set.bind_indices(&[3, 2, 1]).unwrap();
        let out = bf.decode(&q).unwrap();
        assert_eq!(out.indices, vec![3, 2, 1]);
        assert_eq!(out.candidates_examined, 60);
        assert!(out.similarity > 0.99);
    }

    #[test]
    fn brute_force_and_factorizer_agree_on_noisy_queries() {
        let mut r = rng(51);
        let set = CodebookSet::random(&[5, 5, 5], 1024, BindingOp::Hadamard, &mut r);
        let bf = BruteForceFactorizer::new(&set).unwrap();
        let fac = Factorizer::new(FactorizerConfig::default());
        for trial in 0..10 {
            let idx = [trial % 5, (trial * 2) % 5, (trial * 3) % 5];
            let clean = set.bind_indices(&idx).unwrap();
            let noisy = ops::flip_noise(&clean, 0.05, &mut r);
            let bf_out = bf.decode(&noisy).unwrap();
            let fac_out = fac.factorize(&set, &noisy, &mut r).unwrap();
            assert_eq!(bf_out.indices, idx.to_vec());
            assert_eq!(fac_out.indices, idx.to_vec());
        }
    }

    #[test]
    fn footprint_reflects_expanded_size() {
        let mut r = rng(52);
        let set = CodebookSet::random(&[4, 4], 128, BindingOp::Hadamard, &mut r);
        let bf = BruteForceFactorizer::new(&set).unwrap();
        assert_eq!(bf.footprint_bytes(4), 16 * 128 * 4);
        // The factored representation the paper keeps on-chip is far smaller.
        assert!(set.footprint_bytes(4) < bf.footprint_bytes(4));
    }

    #[test]
    fn oversized_product_space_is_refused() {
        let mut r = rng(53);
        let set = CodebookSet::random(&[3000, 3000], 16, BindingOp::Hadamard, &mut r);
        assert!(BruteForceFactorizer::new(&set).is_err());
    }
}
