//! Accuracy and cost accounting for the factorization strategy.
//!
//! These helpers produce the quantities behind Fig. 8 (memory-footprint and runtime
//! reduction of factorization vs. the expanded product codebook), Tab. VII
//! (factorization accuracy across reasoning scenarios) and Tab. VIII (end-to-end
//! reasoning accuracy and parameter counts).

use crate::config::FactorizerConfig;
use crate::resonator::Factorizer;
use cogsys_vsa::codebook::CodebookSet;
use cogsys_vsa::{ops, Precision, VsaError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Compute / memory cost comparison between the brute-force product-codebook search and
/// the iterative factorization (both in number of multiply–accumulate operations and in
/// bytes of codebook storage).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FactorizationCost {
    /// Bytes needed to store the expanded product codebook.
    pub product_codebook_bytes: usize,
    /// Bytes needed to store the per-attribute codebooks.
    pub factored_codebook_bytes: usize,
    /// MAC operations for one brute-force query (similarity against every product vector).
    pub product_macs_per_query: u64,
    /// MAC operations for one factorized query at the given average iteration count.
    pub factored_macs_per_query: u64,
    /// Average number of factorizer iterations this estimate assumed.
    pub assumed_iterations: f64,
}

impl FactorizationCost {
    /// Estimates the cost comparison for a codebook set.
    ///
    /// * `precision` sets bytes/element for the storage comparison.
    /// * `avg_iterations` is the measured (or assumed) mean number of factorizer
    ///   iterations per query.
    pub fn estimate(set: &CodebookSet, precision: Precision, avg_iterations: f64) -> Self {
        let d = set.dim() as u64;
        let combos = set.combinations() as u64;
        let bytes = precision.bytes_per_element();

        // Brute force: one dot product of length d per product vector.
        let product_macs = combos * d;

        // Factorized: per iteration and per factor — unbinding (F-1 element-wise
        // multiplies of length d), similarity GEMV (M_f x d), projection GEMV (M_f x d).
        let f = set.num_factors() as u64;
        let per_iter: u64 = set
            .codebooks()
            .iter()
            .map(|cb| {
                let m = cb.len() as u64;
                (f - 1) * d + 2 * m * d
            })
            .sum();
        let factored_macs = (per_iter as f64 * avg_iterations).round() as u64;

        Self {
            product_codebook_bytes: set.product_footprint_bytes(bytes),
            factored_codebook_bytes: set.footprint_bytes(bytes),
            product_macs_per_query: product_macs,
            factored_macs_per_query: factored_macs,
            assumed_iterations: avg_iterations,
        }
    }

    /// Memory-footprint reduction factor (paper Fig. 8 reports 71.4× for NVSA).
    pub fn memory_reduction(&self) -> f64 {
        if self.factored_codebook_bytes == 0 {
            return f64::INFINITY;
        }
        self.product_codebook_bytes as f64 / self.factored_codebook_bytes as f64
    }

    /// Compute (MAC-count) reduction factor, a proxy for the 4.1× runtime reduction.
    pub fn compute_reduction(&self) -> f64 {
        if self.factored_macs_per_query == 0 {
            return f64::INFINITY;
        }
        self.product_macs_per_query as f64 / self.factored_macs_per_query as f64
    }
}

/// Aggregate statistics from a batch of factorization runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct WorkloadStats {
    /// Number of queries evaluated.
    pub queries: usize,
    /// Number of queries whose full attribute tuple was decoded exactly.
    pub exact_matches: usize,
    /// Number of queries that reached the convergence threshold.
    pub converged: usize,
    /// Total factorizer iterations across all queries.
    pub total_iterations: usize,
    /// Number of runs that ended in a detected limit cycle.
    pub limit_cycles: usize,
}

impl WorkloadStats {
    /// Fraction of queries decoded exactly.
    pub fn accuracy(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.exact_matches as f64 / self.queries as f64
    }

    /// Fraction of queries that converged.
    pub fn convergence_rate(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.converged as f64 / self.queries as f64
    }

    /// Mean iterations per query.
    pub fn mean_iterations(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.total_iterations as f64 / self.queries as f64
    }

    /// Merges another batch into this one.
    pub fn merge(&mut self, other: &WorkloadStats) {
        self.queries += other.queries;
        self.exact_matches += other.exact_matches;
        self.converged += other.converged;
        self.total_iterations += other.total_iterations;
        self.limit_cycles += other.limit_cycles;
    }
}

/// A named accuracy measurement (one cell of Tab. VII / VIII).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Scenario name, e.g. `"2x2Grid"` or `"RAVEN"`.
    pub scenario: String,
    /// Statistics over the evaluated queries.
    pub stats: WorkloadStats,
}

impl AccuracyReport {
    /// Runs the factorizer over `trials` randomly drawn attribute tuples with bit-flip
    /// perception noise `noise_p`, and reports accuracy.
    ///
    /// Each trial draws a random index per factor, binds the codevectors into a query,
    /// applies flip noise (emulating the imperfect neural frontend), factorizes, and
    /// scores an exact match when every decoded index is correct.
    ///
    /// # Errors
    /// Propagates [`VsaError`] from the underlying VSA operations.
    pub fn evaluate<R: Rng + ?Sized>(
        scenario: impl Into<String>,
        set: &CodebookSet,
        config: &FactorizerConfig,
        trials: usize,
        noise_p: f64,
        rng: &mut R,
    ) -> Result<Self, VsaError> {
        let factorizer = Factorizer::new(config.clone());
        let mut stats = WorkloadStats::default();
        for _ in 0..trials {
            let indices: Vec<usize> = set
                .codebooks()
                .iter()
                .map(|cb| rng.gen_range(0..cb.len()))
                .collect();
            let clean = set.bind_indices(&indices)?;
            let query = if noise_p > 0.0 {
                ops::flip_noise(&clean, noise_p, rng)
            } else {
                clean
            };
            let result = factorizer.factorize(set, &query, rng)?;
            stats.queries += 1;
            stats.total_iterations += result.iterations;
            if result.converged {
                stats.converged += 1;
            }
            if result.limit_cycle {
                stats.limit_cycles += 1;
            }
            if result.matches(&indices) {
                stats.exact_matches += 1;
            }
        }
        Ok(Self {
            scenario: scenario.into(),
            stats,
        })
    }

    /// Accuracy as a percentage, the unit used in the paper's tables.
    pub fn accuracy_percent(&self) -> f64 {
        self.stats.accuracy() * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsys_vsa::codebook::BindingOp;
    use cogsys_vsa::rng;

    #[test]
    fn cost_estimate_shows_large_reductions_for_nvsa_like_codebooks() {
        // NVSA-style attribute structure: position-like, number, type, size, color.
        let mut r = rng(40);
        let set = CodebookSet::random(&[9, 9, 7, 10, 10], 1024, BindingOp::Hadamard, &mut r);
        let cost = FactorizationCost::estimate(&set, Precision::Fp32, 15.0);
        assert!(
            cost.memory_reduction() > 50.0,
            "{}",
            cost.memory_reduction()
        );
        assert!(
            cost.compute_reduction() > 5.0,
            "{}",
            cost.compute_reduction()
        );
        assert_eq!(cost.assumed_iterations, 15.0);
        // Factored codebook: (9+9+7+10+10) * 1024 * 4 bytes.
        assert_eq!(cost.factored_codebook_bytes, 45 * 1024 * 4);
    }

    #[test]
    fn cost_reductions_grow_with_factor_count() {
        let mut r = rng(41);
        let small = CodebookSet::random(&[8, 8], 512, BindingOp::Hadamard, &mut r);
        let large = CodebookSet::random(&[8, 8, 8, 8], 512, BindingOp::Hadamard, &mut r);
        let c_small = FactorizationCost::estimate(&small, Precision::Fp32, 10.0);
        let c_large = FactorizationCost::estimate(&large, Precision::Fp32, 10.0);
        assert!(c_large.memory_reduction() > c_small.memory_reduction());
    }

    #[test]
    fn workload_stats_arithmetic() {
        let mut a = WorkloadStats {
            queries: 10,
            exact_matches: 9,
            converged: 10,
            total_iterations: 50,
            limit_cycles: 0,
        };
        assert!((a.accuracy() - 0.9).abs() < 1e-12);
        assert!((a.convergence_rate() - 1.0).abs() < 1e-12);
        assert!((a.mean_iterations() - 5.0).abs() < 1e-12);
        let b = WorkloadStats {
            queries: 10,
            exact_matches: 7,
            converged: 8,
            total_iterations: 150,
            limit_cycles: 2,
        };
        a.merge(&b);
        assert_eq!(a.queries, 20);
        assert_eq!(a.exact_matches, 16);
        assert_eq!(a.limit_cycles, 2);
        assert!((a.mean_iterations() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = WorkloadStats::default();
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.convergence_rate(), 0.0);
        assert_eq!(s.mean_iterations(), 0.0);
    }

    #[test]
    fn accuracy_evaluation_on_clean_queries_is_high() {
        let mut r = rng(42);
        let set = CodebookSet::random(&[8, 8, 8], 1024, BindingOp::Hadamard, &mut r);
        let report =
            AccuracyReport::evaluate("unit", &set, &FactorizerConfig::default(), 20, 0.0, &mut r)
                .unwrap();
        assert!(
            report.accuracy_percent() >= 95.0,
            "{}",
            report.accuracy_percent()
        );
        assert_eq!(report.stats.queries, 20);
        assert_eq!(report.scenario, "unit");
    }

    #[test]
    fn accuracy_degrades_gracefully_with_noise() {
        let mut r = rng(43);
        let set = CodebookSet::random(&[6, 6], 512, BindingOp::Hadamard, &mut r);
        let clean =
            AccuracyReport::evaluate("clean", &set, &FactorizerConfig::default(), 15, 0.0, &mut r)
                .unwrap();
        let very_noisy = AccuracyReport::evaluate(
            "noisy",
            &set,
            &FactorizerConfig::default(),
            15,
            0.45,
            &mut r,
        )
        .unwrap();
        assert!(clean.stats.accuracy() >= very_noisy.stats.accuracy());
    }
}
