//! Factorizer configuration.

use cogsys_vsa::{BackendKind, Precision};
use serde::{Deserialize, Serialize};

/// Stochasticity-injection settings (paper Sec. IV-B).
///
/// Additive zero-mean noise applied to the similarity vector (Step 2) and to the
/// projected estimate before the sign non-linearity (Step 3) lets the iteration escape
/// limit cycles, exploring a larger solution space and converging in fewer iterations.
/// The kernel is **bounded symmetric triangular** noise of the configured standard
/// deviation (samples never exceed `sqrt(6)·sigma` in magnitude — see
/// `BoundedNoise` in the resonator), chosen over a Gaussian so the projection step
/// can both sample cheaply and provably skip dimensions whose sign cannot flip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StochasticityConfig {
    /// Standard deviation of the noise added to each similarity score, expressed as a
    /// multiple of `sqrt(d)` (the natural scale of cross-similarities between random
    /// bipolar vectors of dimension `d`). 0 disables similarity noise.
    pub similarity_sigma: f32,
    /// Standard deviation of the noise added to each element of the projected estimate
    /// before `sign`, expressed as a multiple of `sqrt(d)`. 0 disables projection noise.
    pub projection_sigma: f32,
    /// Multiplicative decay applied to both sigmas each iteration, so the search is
    /// exploratory early and deterministic near convergence.
    pub decay: f32,
}

impl StochasticityConfig {
    /// Noise disabled entirely (the "w/o stochasticity" ablation).
    pub fn disabled() -> Self {
        Self {
            similarity_sigma: 0.0,
            projection_sigma: 0.0,
            decay: 1.0,
        }
    }

    /// Returns `true` if any noise is injected.
    pub fn is_enabled(&self) -> bool {
        self.similarity_sigma > 0.0 || self.projection_sigma > 0.0
    }
}

impl Default for StochasticityConfig {
    fn default() -> Self {
        Self {
            similarity_sigma: 0.2,
            projection_sigma: 0.5,
            decay: 0.97,
        }
    }
}

/// Configuration of the iterative factorizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorizerConfig {
    /// Maximum number of unbind → search → project iterations before giving up.
    pub max_iterations: usize,
    /// The iteration stops once the similarity of the reconstructed product vector to
    /// the query exceeds this threshold (cosine similarity in `[0, 1]`). The paper notes
    /// designers "can balance speed and accuracy by tuning factorization convergence
    /// threshold" (Sec. IV-C).
    pub convergence_threshold: f32,
    /// Stochasticity injection settings.
    pub stochasticity: StochasticityConfig,
    /// Arithmetic precision the three factorization steps are executed in.
    pub precision: Precision,
    /// Number of consecutive identical estimate sets after which a limit cycle is
    /// declared (only reachable when stochasticity is disabled).
    pub limit_cycle_window: usize,
    /// Which batched execution backend runs the three factorization steps.
    ///
    /// The backends agree within a 1e-4 cosine tolerance (binding/bundling are
    /// bitwise identical). The default, [`BackendKind::Packed`], runs the whole
    /// resonator loop on bit-packed sign planes for bipolar Hadamard configurations
    /// (XOR unbinding, popcount similarity, fused packed projection) and falls back
    /// to [`BackendKind::Parallel`] — row parallelism, cached FFT plans, vectorised
    /// similarity kernels — for HRR/circular binding and non-bipolar operands.
    pub backend: BackendKind,
}

impl FactorizerConfig {
    /// Configuration used for the paper-style accuracy experiments: stochasticity on,
    /// FP32 arithmetic.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// The "factorization only" ablation: no stochasticity.
    pub fn without_stochasticity() -> Self {
        Self {
            stochasticity: StochasticityConfig::disabled(),
            ..Self::default()
        }
    }

    /// Returns a copy with the arithmetic precision replaced.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Returns a copy with the iteration budget replaced.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Returns a copy with the execution backend replaced.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Basic sanity checks; returns a human-readable complaint when invalid.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_iterations == 0 {
            return Err("max_iterations must be at least 1".to_string());
        }
        if !(0.0..=1.0).contains(&self.convergence_threshold) {
            return Err(format!(
                "convergence_threshold must be in [0,1], got {}",
                self.convergence_threshold
            ));
        }
        if self.stochasticity.decay <= 0.0 || self.stochasticity.decay > 1.0 {
            return Err(format!(
                "stochasticity decay must be in (0,1], got {}",
                self.stochasticity.decay
            ));
        }
        // The sigmas parameterise the bounded noise kernel deep in the resonator's
        // hot loop; validating here means its amplitude (`sqrt(6)·sigma`) is always
        // finite and non-negative there.
        for (name, sigma) in [
            ("similarity_sigma", self.stochasticity.similarity_sigma),
            ("projection_sigma", self.stochasticity.projection_sigma),
        ] {
            if !sigma.is_finite() || sigma < 0.0 {
                return Err(format!(
                    "stochasticity {name} must be finite and >= 0, got {sigma}"
                ));
            }
        }
        Ok(())
    }
}

impl Default for FactorizerConfig {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            convergence_threshold: 0.9,
            stochasticity: StochasticityConfig::default(),
            precision: Precision::Fp32,
            limit_cycle_window: 4,
            backend: BackendKind::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(FactorizerConfig::default().validate().is_ok());
        assert!(FactorizerConfig::without_stochasticity().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = FactorizerConfig {
            max_iterations: 0,
            ..FactorizerConfig::default()
        };
        assert!(c.validate().is_err());

        let c = FactorizerConfig {
            convergence_threshold: 1.5,
            ..FactorizerConfig::default()
        };
        assert!(c.validate().is_err());

        // Negative or non-finite sigmas must be rejected up front — the resonator
        // derives its noise amplitude from them in its hot loop.
        let mut c = FactorizerConfig::default();
        c.stochasticity.similarity_sigma = -0.1;
        assert!(c.validate().is_err());
        let mut c = FactorizerConfig::default();
        c.stochasticity.projection_sigma = f32::NAN;
        assert!(c.validate().is_err());

        let mut c = FactorizerConfig::default();
        c.stochasticity.decay = 0.0; // nested field: no initializer shorthand
        assert!(c.validate().is_err());
    }

    #[test]
    fn stochasticity_toggles() {
        assert!(StochasticityConfig::default().is_enabled());
        assert!(!StochasticityConfig::disabled().is_enabled());
        assert!(!FactorizerConfig::without_stochasticity()
            .stochasticity
            .is_enabled());
    }

    #[test]
    fn builder_style_setters() {
        let c = FactorizerConfig::default()
            .with_precision(Precision::Int8)
            .with_max_iterations(17)
            .with_backend(BackendKind::Reference);
        assert_eq!(c.precision, Precision::Int8);
        assert_eq!(c.max_iterations, 17);
        assert_eq!(c.backend, BackendKind::Reference);
    }
}
