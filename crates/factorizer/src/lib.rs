//! # cogsys-factorizer — efficient symbolic codebook factorization
//!
//! Implements the CogSys algorithm-level contribution (paper Sec. IV): an iterative,
//! resonator-network-style factorizer that decomposes an entangled query vector
//! `q = x_1 ⊙ x_2 ⊙ ... ⊙ x_F` into one codevector per attribute codebook, *without*
//! materialising the `M^F`-entry product codebook. Each iteration performs three steps
//! (Fig. 8):
//!
//! 1. **Factor unbinding** — `x̃_i(t) = q ⊘ Π_{f≠i} x̂_f(t)`
//! 2. **Similarity search** — `α_f(t) = x̃_f(t) · X_f`
//! 3. **Factor projection** — `x̂_f(t+1) = sign(α_f(t) · X_fᵀ)`
//!
//! plus the Sec. IV-B optimisations: additive zero-mean **stochasticity** on steps 2
//! and 3 (a bounded triangular kernel in this implementation — escapes limit cycles,
//! reduces iteration count) and reduced-precision (**FP8 / INT8**) execution of all
//! three steps.
//!
//! # Example
//!
//! ```rust
//! use cogsys_vsa::{codebook::BindingOp, CodebookSet};
//! use cogsys_factorizer::{Factorizer, FactorizerConfig};
//!
//! let mut rng = cogsys_vsa::rng(1);
//! let set = CodebookSet::random(&[8, 8, 8], 1024, BindingOp::Hadamard, &mut rng);
//! let query = set.bind_indices(&[3, 5, 1]).unwrap();
//!
//! let factorizer = Factorizer::new(FactorizerConfig::default());
//! let result = factorizer.factorize(&set, &query, &mut rng).unwrap();
//! assert_eq!(result.indices, vec![3, 5, 1]);
//! assert!(result.converged);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod metrics;
pub mod resonator;

pub use baseline::{BruteForceFactorizer, BruteForceOutcome};
pub use config::{FactorizerConfig, StochasticityConfig};
pub use metrics::{AccuracyReport, FactorizationCost, WorkloadStats};
pub use resonator::{BoundedNoise, FactorizationResult, Factorizer, FactorizerScratch};
