//! Offline, API-compatible subset of the `rand_distr` crate.
//!
//! Provides the [`Normal`] distribution over `f32`/`f64` via the Box–Muller transform.
//! The transform is deliberately *stateless* (the second Box–Muller variate is
//! discarded) so sampling order is a pure function of the underlying generator state —
//! the batched and per-query factorizer paths rely on that for exact reproducibility.

use rand::{Rng, RngCore};

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or not finite.
    BadVariance,
    /// The mean was not finite.
    MeanTooSmall,
}

impl core::fmt::Display for NormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// A distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Floating-point scalars the distributions are generic over (`f32` / `f64`).
pub trait Float: Copy {
    /// Converts from `f64` (possibly losing precision).
    fn from_f64(x: f64) -> Self;
    /// Converts to `f64` exactly.
    fn to_f64(self) -> f64;
}

impl Float for f32 {
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Float for f64 {
    fn from_f64(x: f64) -> Self {
        x
    }
    fn to_f64(self) -> f64 {
        self
    }
}

/// Gaussian (normal) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Creates a normal distribution with the given mean and standard deviation.
    ///
    /// # Errors
    /// Returns [`NormalError`] when either parameter is non-finite or the standard
    /// deviation is negative.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if !mean.to_f64().is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.to_f64().is_finite() || std_dev.to_f64() < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller, first variate only (see module docs).
        let u1: f64 = loop {
            let u = f64::max(rng.gen::<f64>(), f64::MIN_POSITIVE);
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

// Keep the explicit RngCore bound import live even though `Rng` is blanket-implemented.
#[allow(dead_code)]
fn _rngcore_is_object_safe(_r: &mut dyn RngCore) {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0_f32, -1.0).is_err());
        assert!(Normal::new(f32::NAN, 1.0).is_err());
        assert!(Normal::new(0.0_f32, f32::INFINITY).is_err());
    }

    #[test]
    fn sample_moments_match_parameters() {
        let mut r = StdRng::seed_from_u64(5);
        let normal = Normal::new(2.0_f64, 3.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }
}
