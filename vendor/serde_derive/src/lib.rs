//! No-op `Serialize` / `Deserialize` derives.
//!
//! The vendored `serde` shim implements the two traits blanket-style for every type,
//! so the derive macros have nothing to generate — they exist only so that
//! `#[derive(Serialize, Deserialize)]` attributes in the workspace compile without
//! network access to the real `serde`. Serialization is not exercised anywhere in the
//! repository; if a future PR needs it, replace the `vendor/serde*` shims with the real
//! crates.

use proc_macro::TokenStream;

/// Accepts and discards the annotated item (the blanket impl in `serde` covers it).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards the annotated item (the blanket impl in `serde` covers it).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
