//! Marker-trait subset of `serde` for offline builds.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and result types for
//! forward compatibility, but never actually serializes anything (there is no
//! `serde_json` in the tree). This shim keeps those derives compiling without network
//! access: the traits are blanket-implemented for every type and the derive macros
//! (re-exported from the sibling `serde_derive` shim) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
