//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so the
//! workspace vendors the small slice of `rand`'s API the CogSys crates actually use:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator behind `StdRng` is xoshiro256** seeded through
//! SplitMix64 — deterministic across platforms, which is all the reproduction relies on
//! (no test depends on the exact stream of the upstream `StdRng`).

pub mod rngs;

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from its "standard" distribution (uniform bits / uniform
    /// `[0, 1)` for floats / fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0,1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping is fine here: span is tiny
                // relative to 2^64 in every call site, so modulo bias is negligible
                // for the statistical tests this repository runs.
                let v = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(8);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn uniform_floats_cover_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        let samples: Vec<f64> = (0..10_000).map(|_| r.gen::<f64>()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(samples.iter().all(|&x| (0.0..1.0).contains(&x)));
    }
}
