//! Test-runner configuration and case bookkeeping.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases a property test runs (the only knob this shim supports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream proptest's 256 to keep the full workspace
    /// test suite fast; individual tests can raise it via `with_cases`.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test deterministic sample stream.
pub struct Sampler {
    rng: StdRng,
}

impl Sampler {
    /// Seeds the stream from the test name so every property has its own sequence.
    pub fn new(test_name: &str) -> Self {
        Self {
            rng: StdRng::seed_from_u64(crate::seed_for(test_name)),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
