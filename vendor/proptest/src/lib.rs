//! Offline mini property-testing harness, API-compatible with the subset of
//! `proptest` this workspace uses.
//!
//! Supported surface:
//!
//! * `proptest! { #[test] fn name(arg in strategy, ...) { body } ... }` with an
//!   optional leading `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * range strategies over integers and floats (`0u64..500`, `0.0f64..1e6`,
//!   inclusive ranges);
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Each generated `#[test]` runs the body for `cases` deterministic pseudo-random
//! samples (seeded from the test name), reporting the failing inputs on panic. There
//! is no shrinking — failures print the exact sampled values instead, which the
//! deterministic seeding makes reproducible.

pub mod strategy;
pub mod test_runner;

/// Everything needed by `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// FNV-1a hash of the test name, used to give every property test its own
/// deterministic sample stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests (see the crate docs for the supported grammar).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut sampler = $crate::test_runner::Sampler::new(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), sampler.rng());)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {case}/{}: {e}\n  inputs: {}",
                            stringify!($name),
                            config.cases,
                            [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", "),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case with
/// context instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ),
        }
    };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l != *r,
                "assertion failed: `{} != {}` (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ),
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
    }

    proptest! {
        #[test]
        fn ranges_respected(x in 3usize..10, y in -2i64..=2, f in 0.5f32..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_is_honoured(x in 0u64..1000) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_report_inputs() {
        // Invoke the generated test body directly by defining it in a nested module.
        mod inner {
            use crate::prelude::*;
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(1))]
                #[test]
                fn always_fails(x in 0u64..10) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            pub fn run() {
                always_fails();
            }
        }
        inner::run();
    }
}
