//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// A source of random values for one property-test argument.
///
/// Only range strategies are provided; `proptest`'s combinators (`prop_oneof`, `Just`,
/// collection strategies, ...) are not needed by this workspace.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
