//! Minimal wall-clock benchmarking harness with a `criterion`-compatible API.
//!
//! The build environment has no crates.io access, so this shim provides the subset of
//! criterion the workspace's `benches/` use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `Bencher::iter`, `BenchmarkId::new`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of statistical analysis it reports the mean,
//! minimum and maximum wall-clock time per iteration over `sample_size` samples, each
//! sample running enough iterations to amortise timer overhead.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs one benchmark body repeatedly and measures it.
pub struct Bencher {
    samples: usize,
    /// Mean/min/max nanoseconds per iteration, filled by [`Bencher::iter`].
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Measures `routine`, storing per-iteration timing statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: target roughly 25 ms of work per sample, with at
        // least one iteration per sample.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample = ((Duration::from_millis(25).as_nanos() / once.as_nanos()).max(1)
            as usize)
            .min(1_000_000);

        let mut mean_acc = 0.0f64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = f64::NEG_INFINITY;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let per_iter = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            mean_acc += per_iter;
            min_ns = min_ns.min(per_iter);
            max_ns = max_ns.max(per_iter);
        }
        self.result = Some((mean_acc / self.samples as f64, min_ns, max_ns));
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run(&mut self, label: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((mean, min, max)) => println!(
                "{}/{label}: mean {} (min {}, max {})",
                self.name,
                format_ns(mean),
                format_ns(min),
                format_ns(max)
            ),
            None => println!("{}/{label}: no measurement recorded", self.name),
        }
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, routine: F) {
        self.run(id.to_string(), routine);
    }

    /// Benchmarks `routine` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: F,
    ) {
        self.run(id.to_string(), |b| routine(b, input));
    }

    /// Ends the group (printing happens eagerly, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Display,
        routine: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
