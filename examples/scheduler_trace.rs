//! Scheduler trace: print the adSCH schedule of a small NVSA batch entry by entry, to
//! see the cell-wise neural/symbolic partitioning and cross-task interleaving of
//! Fig. 13 in action.
//!
//! Run with: `cargo run --release --example scheduler_trace`

use cogsys_scheduler::{AdSchScheduler, ExecUnit, Scheduler};
use cogsys_sim::{AcceleratorConfig, ComputeArray};
use cogsys_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::new(WorkloadKind::Nvsa);
    let graph = spec.operation_graph(2);
    let array = ComputeArray::new(AcceleratorConfig::cogsys()).expect("valid configuration");
    let schedule = AdSchScheduler::default()
        .schedule(&array, &graph)
        .expect("valid graph");

    println!(
        "adSCH schedule of 2 NVSA tasks ({} ops, makespan {} cycles, utilisation {:.1} %):\n",
        graph.len(),
        schedule.makespan_cycles,
        100.0 * schedule.array_utilization()
    );
    println!(
        "{:>5} {:>5} {:<10} {:<6} {:>12} {:>12} {:>7}  kernel",
        "op", "task", "class", "unit", "start", "end", "cells"
    );
    for entry in &schedule.entries {
        let node = graph.node(entry.op).expect("entry references a graph node");
        let unit = match entry.unit {
            ExecUnit::Array => "array",
            ExecUnit::Simd => "simd",
        };
        println!(
            "{:>5} {:>5} {:<10} {:<6} {:>12} {:>12} {:>7}  {}",
            entry.op,
            entry.task,
            entry.class.to_string(),
            unit,
            entry.start,
            entry.end,
            entry.cells.len(),
            node.kernel.label()
        );
    }

    println!(
        "\ncycles with symbolic work in flight: {}",
        schedule.busy_cycles_by_class(cogsys_sim::KernelClass::Symbolic)
    );
    println!(
        "cycles with neural work in flight  : {}",
        schedule.busy_cycles_by_class(cogsys_sim::KernelClass::Neural)
    );
}
