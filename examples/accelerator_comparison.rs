//! Hardware walk-through: run the NVSA kernel mix through the cycle-level CogSys
//! accelerator model with and without its three techniques (reconfigurable nsPE,
//! scalable array, adSCH scheduling), and against the TPU-/MTIA-/Gemmini-like baselines
//! (paper Sec. V-VII, Fig. 18/19).
//!
//! Run with: `cargo run --release --example accelerator_comparison`

use cogsys::{AblationVariant, CogSysConfig, CogSysSystem};
use cogsys_scheduler::{AdSchScheduler, Scheduler, SequentialScheduler};
use cogsys_sim::{AcceleratorConfig, ComputeArray, EnergyModel, Kernel};
use cogsys_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::new(WorkloadKind::Nvsa);
    let graph = spec.operation_graph(4);

    println!(
        "NVSA batch of 4 reasoning tasks: {} operations\n",
        graph.len()
    );

    // Scheduling on the CogSys array: adSCH vs sequential.
    let array = ComputeArray::new(AcceleratorConfig::cogsys()).expect("valid configuration");
    let adsch = AdSchScheduler::default()
        .schedule(&array, &graph)
        .expect("valid graph");
    let sequential = SequentialScheduler
        .schedule(&array, &graph)
        .expect("valid graph");
    println!("CogSys accelerator (16 cells of 32x32 nsPEs, 0.8 GHz):");
    println!(
        "  adSCH schedule     : {:>10} cycles ({:.3} ms), utilisation {:.1} %",
        adsch.makespan_cycles,
        adsch.makespan_seconds(0.8) * 1e3,
        100.0 * adsch.array_utilization()
    );
    println!(
        "  sequential schedule: {:>10} cycles ({:.3} ms)",
        sequential.makespan_cycles,
        sequential.makespan_seconds(0.8) * 1e3
    );

    // The headline symbolic kernel on each accelerator.
    println!("\nSymbolic circular convolution (d=1024, k=210) across accelerators:");
    let kernel = Kernel::CircConv {
        dim: 1024,
        count: 210,
    };
    for (name, config) in [
        ("CogSys", AcceleratorConfig::cogsys()),
        ("TPU-like", AcceleratorConfig::tpu_like()),
        ("MTIA-like", AcceleratorConfig::mtia_like()),
        ("Gemmini-like", AcceleratorConfig::gemmini_like()),
    ] {
        let accel = ComputeArray::new(config).expect("valid configuration");
        let cells = accel.config().geometry.cells;
        let record = accel.execute(&kernel, cells).expect("valid kernel");
        println!("  {:<13} {:>12} cycles", name, record.cycles);
    }

    // Ablation of the three techniques (Fig. 19) plus the area/power budget (Fig. 14).
    println!("\nAblation (normalised runtime, full CogSys = 1.0):");
    let system = CogSysSystem::new(CogSysConfig::default());
    for variant in AblationVariant::ALL {
        let relative = system
            .ablation_relative_runtime(variant)
            .expect("valid configuration");
        println!("  {:<22} {:.2}x", format!("{variant:?}"), relative);
    }

    let energy = EnergyModel::new(AcceleratorConfig::cogsys());
    println!(
        "\nAccelerator budget (INT8, 28 nm): {:.2} mm^2, {:.2} W",
        energy.area().total_mm2(),
        energy.power().total_w()
    );
}
