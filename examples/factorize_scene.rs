//! Scene-vector factorization walk-through: build NVSA-style attribute codebooks, bind
//! a scene description into a hypervector, corrupt it with perception noise, and
//! recover the attributes with the CogSys iterative factorizer — comparing memory and
//! work against the brute-force product-codebook search it replaces (paper Sec. IV,
//! Fig. 8).
//!
//! The walk-through makes the resonator's **capacity cliff** explicit: a flat F = 5
//! factorization at d = 1024 sits beyond the network's operational capacity and
//! (usually) fails to converge, which is why the production pipeline splits the five
//! attributes into two bound blocks and factorizes each block separately — the same
//! strategy `cogsys-workloads` uses, demonstrated here on the packed bipolar backend.
//!
//! Run with: `cargo run --release --example factorize_scene`

use cogsys_factorizer::{BruteForceFactorizer, FactorizationCost, Factorizer, FactorizerConfig};
use cogsys_vsa::codebook::{BindingOp, CodebookSet};
use cogsys_vsa::{ops, BackendKind, Codebook, Precision};
use cogsys_workloads::NeurosymbolicSolver;

fn main() {
    let mut rng = cogsys_vsa::rng(7);

    // NVSA attribute structure: position(9), number(9), type(5), size(6), color(10).
    let sizes = [9usize, 9, 5, 6, 10];
    let dim = 1024;
    let set = CodebookSet::random(&sizes, dim, BindingOp::Hadamard, &mut rng);
    println!(
        "attribute codebooks: {} factors, {} combinations, d = {}",
        set.num_factors(),
        set.combinations(),
        set.dim()
    );

    // A "scene" produced by the neural frontend: one codevector per attribute, bound
    // together, with a little interface noise.
    let truth = [4usize, 2, 3, 1, 7];
    let clean = set.bind_indices(&truth).expect("indices are in range");
    let query = ops::flip_noise(&clean, 0.05, &mut rng);

    // --- Part 1: the F = 5 capacity cliff -------------------------------------------
    // The resonator's operational capacity shrinks rapidly with the number of factors;
    // 22 680 combinations across five factors at d = 1024 is outside it, so the flat
    // factorization is expected NOT to converge. This is presented deliberately: it is
    // the reason the pipeline below factorizes per block.
    let flat = Factorizer::new(FactorizerConfig::default());
    let result = flat
        .factorize(&set, &query, &mut rng)
        .expect("query matches the codebook dimension");
    println!("\nFlat F=5 factorization (capacity cliff demo):");
    println!(
        "  decoded attributes : {:?} (truth {:?})",
        result.indices, truth
    );
    println!(
        "  iterations         : {} (budget {})",
        result.iterations,
        flat.config().max_iterations
    );
    println!("  converged          : {}", result.converged);
    if !result.converged {
        println!("  -> expected: F=5 at d=1024 exceeds the resonator's capacity.");
    }

    // --- Part 2: per-block factorization (the production strategy) ------------------
    // Split the five attributes into the pipeline's two blocks — (position, number,
    // type) and (size, color) — bind each block, superpose the two products into one
    // scene vector (exactly what `cogsys-workloads` encodes), and factorize each block
    // *out of the superposition* on the bit-packed backend (XOR unbind + popcount
    // similarity). Each block is well inside capacity; the other block acts as bounded
    // superposition noise, which is why the convergence threshold drops to
    // 0.6/sqrt(#blocks) — the flat 0.9 would be unreachable by construction.
    let blocks: [&[usize]; 2] = [&[0, 1, 2], &[3, 4]];
    let block_sets: Vec<CodebookSet> = blocks
        .iter()
        .map(|attrs| {
            let members: Vec<Codebook> =
                attrs.iter().map(|&i| set.codebooks()[i].clone()).collect();
            CodebookSet::new(members, BindingOp::Hadamard).expect("blocks are non-empty")
        })
        .collect();
    // Scene = sign(block0 + block1) plus 1% interface noise. A correct block decode
    // plateaus at cosine ≈ 0.5 against this scene (the other block halves the
    // agreement and ties break to +1), so the per-block threshold of ≈ 0.42 is
    // reachable while the flat 0.9 never is.
    let products: Vec<_> = blocks
        .iter()
        .zip(&block_sets)
        .map(|(attrs, bs)| {
            let idx: Vec<usize> = attrs.iter().map(|&i| truth[i]).collect();
            bs.bind_indices(&idx).expect("indices are in range")
        })
        .collect();
    let scene = ops::flip_noise(
        &ops::majority_bundle(products.iter()).expect("two block products"),
        0.01,
        &mut rng,
    );

    let block_threshold = NeurosymbolicSolver::block_convergence_threshold(blocks.len());
    // BackendKind::Packed is the default since the packed pipeline closed end to end;
    // the explicit call documents that this example leans on the XOR/popcount engine.
    let factorizer = Factorizer::new(
        FactorizerConfig {
            convergence_threshold: block_threshold,
            ..FactorizerConfig::default()
        }
        .with_backend(BackendKind::Packed),
    );
    println!(
        "\nPer-block factorization of the scene superposition (packed backend, \
         threshold {block_threshold:.2}):"
    );
    let mut decoded = vec![0usize; sizes.len()];
    for (b, (attrs, block_set)) in blocks.iter().zip(&block_sets).enumerate() {
        let block_result = factorizer
            .factorize(block_set, &scene, &mut rng)
            .expect("scene matches the codebook dimension");
        for (&attr, &idx) in attrs.iter().zip(&block_result.indices) {
            decoded[attr] = idx;
        }
        println!(
            "  block {b} ({} factors): decoded {:?} in {} iterations, converged = {}",
            attrs.len(),
            block_result.indices,
            block_result.iterations,
            block_result.converged
        );
    }
    println!(
        "  all attributes     : {:?} (truth {:?}) -> {}",
        decoded,
        truth,
        if decoded == truth {
            "exact"
        } else {
            "mismatch"
        }
    );

    // --- Part 3: brute-force baseline and the Fig. 8 cost comparison ----------------
    let brute = BruteForceFactorizer::new(&set).expect("product space fits the expansion guard");
    let baseline = brute
        .decode(&query)
        .expect("query matches the codebook dimension");
    println!("\nBrute-force product-codebook search:");
    println!("  decoded attributes : {:?}", baseline.indices);
    println!("  candidates examined: {}", baseline.candidates_examined);

    let cost = FactorizationCost::estimate(&set, Precision::Fp32, result.iterations as f64);
    println!("\nFactorization vs product codebook:");
    println!(
        "  codebook memory    : {:.0} KB -> {:.0} KB  ({:.1}x reduction)",
        cost.product_codebook_bytes as f64 / 1024.0,
        cost.factored_codebook_bytes as f64 / 1024.0,
        cost.memory_reduction()
    );
    println!(
        "  MACs per query     : {:.2e} -> {:.2e}  ({:.1}x reduction)",
        cost.product_macs_per_query as f64,
        cost.factored_macs_per_query as f64,
        cost.compute_reduction()
    );
}
