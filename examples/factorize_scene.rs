//! Scene-vector factorization walk-through: build NVSA-style attribute codebooks, bind a
//! scene description into a single hypervector, corrupt it with perception noise, and
//! recover the attributes with the CogSys iterative factorizer — comparing memory and
//! work against the brute-force product-codebook search it replaces (paper Sec. IV,
//! Fig. 8).
//!
//! Run with: `cargo run --release --example factorize_scene`

use cogsys_factorizer::{BruteForceFactorizer, FactorizationCost, Factorizer, FactorizerConfig};
use cogsys_vsa::codebook::{BindingOp, CodebookSet};
use cogsys_vsa::{ops, Precision};

fn main() {
    let mut rng = cogsys_vsa::rng(7);

    // NVSA attribute structure: position(9), number(9), type(5), size(6), color(10).
    let sizes = [9usize, 9, 5, 6, 10];
    let dim = 1024;
    let set = CodebookSet::random(&sizes, dim, BindingOp::Hadamard, &mut rng);
    println!(
        "attribute codebooks: {} factors, {} combinations, d = {}",
        set.num_factors(),
        set.combinations(),
        set.dim()
    );

    // A "scene" produced by the neural frontend: one codevector per attribute, bound
    // together, with a little interface noise.
    let truth = [4usize, 2, 3, 1, 7];
    let clean = set.bind_indices(&truth).expect("indices are in range");
    let query = ops::flip_noise(&clean, 0.05, &mut rng);

    // CogSys factorization.
    let factorizer = Factorizer::new(FactorizerConfig::default());
    let result = factorizer
        .factorize(&set, &query, &mut rng)
        .expect("query matches the codebook dimension");
    println!("\nCogSys factorizer:");
    println!(
        "  decoded attributes : {:?} (truth {:?})",
        result.indices, truth
    );
    println!("  iterations         : {}", result.iterations);
    println!("  converged          : {}", result.converged);

    // Brute-force baseline over the expanded product codebook.
    let brute = BruteForceFactorizer::new(&set).expect("product space fits the expansion guard");
    let baseline = brute
        .decode(&query)
        .expect("query matches the codebook dimension");
    println!("\nBrute-force product-codebook search:");
    println!("  decoded attributes : {:?}", baseline.indices);
    println!("  candidates examined: {}", baseline.candidates_examined);

    // Cost comparison (the Fig. 8 claim).
    let cost = FactorizationCost::estimate(&set, Precision::Fp32, result.iterations as f64);
    println!("\nFactorization vs product codebook:");
    println!(
        "  codebook memory    : {:.0} KB -> {:.0} KB  ({:.1}x reduction)",
        cost.product_codebook_bytes as f64 / 1024.0,
        cost.factored_codebook_bytes as f64 / 1024.0,
        cost.memory_reduction()
    );
    println!(
        "  MACs per query     : {:.2e} -> {:.2e}  ({:.1}x reduction)",
        cost.product_macs_per_query as f64,
        cost.factored_macs_per_query as f64,
        cost.compute_reduction()
    );
}
