//! Quickstart: solve a handful of synthetic RAVEN problems end to end with CogSys and
//! report accuracy, latency, energy and the speedup over conventional hardware.
//!
//! Run with: `cargo run --release --example quickstart`

use cogsys::{CogSysConfig, CogSysSystem};
use cogsys_datasets::DatasetKind;
use cogsys_sim::DeviceKind;

fn main() {
    let system = CogSysSystem::new(CogSysConfig::default());

    println!("CogSys quickstart — NVSA-style abduction reasoning on synthetic RAVEN\n");

    let outcome = system
        .run_reasoning(DatasetKind::Raven, 5, 2024)
        .expect("the default configuration is valid");

    println!("problems solved          : {}", outcome.report.problems);
    println!(
        "reasoning accuracy       : {:.1} %",
        100.0 * outcome.report.accuracy()
    );
    println!(
        "factorization accuracy   : {:.1} %",
        100.0 * outcome.report.factorization_accuracy()
    );
    println!(
        "accelerator latency/task : {:.3} ms  (paper real-time bound: 300 ms)",
        outcome.seconds_per_task * 1e3
    );
    println!(
        "accelerator energy/task  : {:.3} mJ",
        outcome.joules_per_task * 1e3
    );
    println!(
        "array utilisation        : {:.1} %",
        100.0 * outcome.utilization
    );

    println!("\nSpeedup of the CogSys accelerator over baseline devices (same workload):");
    let cogsys_seconds = outcome.seconds_per_task;
    for device in [
        DeviceKind::JetsonTx2,
        DeviceKind::XavierNx,
        DeviceKind::XeonCpu,
        DeviceKind::RtxGpu,
    ] {
        let device_seconds = system.device_seconds_per_task(device);
        println!(
            "  {:<12} {:>8.2}x  ({:.1} ms per task)",
            device.to_string(),
            device_seconds / cogsys_seconds,
            device_seconds * 1e3
        );
    }
}
