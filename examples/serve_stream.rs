//! Sustained-throughput serving loop: the cross-problem batched solving engine in its
//! steady state.
//!
//! Simulates a reasoning service draining an endless problem stream: problems arrive
//! in `batch`-sized chunks and every chunk flows through ONE
//! [`cogsys_workloads::NeurosymbolicSolver::solve_batch_with`] call — one encode over
//! all `8·batch` context panels, one factorize call per attribute block, one batched
//! answer-scoring pass — with a single [`cogsys_workloads::SolverScratch`] reused
//! across chunks, so after the first window the loop allocates (almost) nothing.
//! Because the batched engine draws rng per problem in sequential order, the answers
//! are identical to solving the stream one problem at a time; only the throughput
//! changes.
//!
//! Run with: `cargo run --release --example serve_stream [-- <batch> <windows>]`
//! (defaults: batch = 64 problems, windows = 4).

use cogsys_datasets::{DatasetKind, ProblemGenerator};
use cogsys_workloads::{NeurosymbolicSolver, SolverConfig, SolverReport, SolverScratch};
use std::time::Instant;

/// Parses a positive integer argument, or exits with a usage message — a typo
/// must not silently fall back to the default and misreport throughput.
fn parse_positive(value: Option<String>, name: &str, default: usize) -> usize {
    match value {
        None => default,
        Some(raw) => match raw.parse() {
            Ok(parsed) if parsed > 0 => parsed,
            _ => {
                eprintln!(
                    "invalid {name} `{raw}` (expected a positive integer)\n\
                     usage: serve_stream [-- <batch> <windows>]"
                );
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let batch = parse_positive(args.next(), "batch", 64);
    let windows = parse_positive(args.next(), "windows", 4);
    if let Some(extra) = args.next() {
        eprintln!("unexpected argument `{extra}`\nusage: serve_stream [-- <batch> <windows>]");
        std::process::exit(2);
    }

    let mut rng = cogsys_vsa::rng(7);
    let config = SolverConfig::default();
    let solver = NeurosymbolicSolver::new(config, &mut rng);
    let generator = ProblemGenerator::new(DatasetKind::Raven);
    let mut scratch = SolverScratch::default();

    println!(
        "serve_stream — {} problems/batch ({} panel rows per factorize call), d = {}, backend = {}\n",
        batch,
        batch * 8,
        solver.config().vector_dim,
        solver.backend().name(),
    );

    // Warm-up: one full-size batch so every scratch buffer reaches its steady-state
    // shape (ensure_shape reallocates on any shape change); excluded from the report.
    let warmup = generator.generate_batch(batch, &mut rng);
    solver
        .solve_batch_with(&warmup, &mut rng, &mut scratch)
        .expect("well-formed problems solve");

    let mut total = SolverReport::default();
    let mut total_seconds = 0.0f64;
    for window in 1..=windows {
        let problems = generator.generate_batch(batch, &mut rng);
        let start = Instant::now();
        let report = solver
            .solve_batch_with(&problems, &mut rng, &mut scratch)
            .expect("well-formed problems solve");
        let seconds = start.elapsed().as_secs_f64();
        total_seconds += seconds;
        total.merge(&report);
        println!(
            "window {window}: {:7.1} problems/s  ({:6.2} ms/batch, accuracy {:5.1} %, {} factorizer iterations)",
            batch as f64 / seconds,
            seconds * 1e3,
            100.0 * report.accuracy(),
            report.factorizer_iterations,
        );
    }

    println!(
        "\nsustained: {:.1} problems/s over {} problems  (accuracy {:.1} %, factorization accuracy {:.1} %)",
        total.problems as f64 / total_seconds,
        total.problems,
        100.0 * total.accuracy(),
        100.0 * total.factorization_accuracy(),
    );
}
