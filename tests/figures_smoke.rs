//! Smoke tests over the figure/table regeneration entry points: every experiment can be
//! produced and has the expected shape (row labels, column counts, non-degenerate
//! values). The heavyweight accuracy sweeps (Tab. VII/VIII) run with tiny trial counts
//! here; the bench binaries use larger ones.

use cogsys::experiments;

#[test]
fn all_fast_experiments_produce_well_formed_tables() {
    let fig04 = experiments::fig04_profiling();
    assert_eq!(fig04.len(), 4);
    for table in &fig04 {
        assert_eq!(table.rows.len(), 4, "{}", table.title);
    }

    assert_eq!(experiments::fig05_roofline().rows.len(), 8);
    assert_eq!(experiments::fig06_symbolic_ops().rows.len(), 5);
    assert_eq!(experiments::tab02_kernel_stats().rows.len(), 4);

    let fig11 = experiments::fig11_bs_dataflow();
    assert_eq!(fig11.len(), 2);
    assert_eq!(experiments::fig12_st_mapping().rows.len(), 4);
    assert_eq!(experiments::tab05_pe_choice().rows.len(), 2);
    assert_eq!(experiments::fig13_adsch().rows.len(), 2);
    assert_eq!(experiments::tab09_precision().rows.len(), 3);
    assert_eq!(experiments::fig15_runtime().rows.len(), 5);
    assert_eq!(experiments::fig16_energy().rows.len(), 7);
    let fig17 = experiments::fig17_circconv_speedup();
    assert_eq!(fig17.len(), 2);
    assert_eq!(fig17[0].rows.len(), 5);
    assert_eq!(experiments::fig18_accelerators().rows.len(), 3);
    assert_eq!(experiments::fig19_ablation().rows.len(), 3);
    assert_eq!(experiments::tab10_codesign().rows.len(), 5);
}

#[test]
fn factorization_experiments_report_accuracy_and_reductions() {
    let fig08 = experiments::fig08_factorization(1);
    assert_eq!(fig08.rows.len(), 1);
    assert!(
        fig08.rows[0].1[2] > 10.0,
        "memory reduction should be large"
    );

    // Tiny trial counts keep this test fast while still exercising the full path.
    let tab07 = experiments::tab07_factorization_accuracy(1, 3);
    assert_eq!(tab07.rows.len(), 14, "7 constellations + 7 rule types");
    for (label, values) in &tab07.rows {
        assert!(
            (0.0..=100.0).contains(&values[0]),
            "{label}: accuracy {} out of range",
            values[0]
        );
    }

    let tab08 = experiments::tab08_reasoning_accuracy(2, 3);
    assert_eq!(tab08.rows.len(), 3);
    for (_, values) in &tab08.rows {
        assert!(values[0] >= 0.0 && values[0] <= 100.0);
        assert!(values[2] > 0.0, "codebook size should be positive");
    }
}

#[test]
fn experiment_tables_render_to_text() {
    let table = experiments::tab09_precision();
    let rendered = table.to_string();
    assert!(rendered.contains("INT8"));
    assert!(rendered.contains("FP32"));
    assert!(rendered.lines().count() >= 5);
}
