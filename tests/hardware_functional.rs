//! Integration tests tying the functional VSA algebra to the register-level hardware
//! model: the nsPE array must compute the same numbers the algorithm crates rely on.

use cogsys_factorizer::{Factorizer, FactorizerConfig};
use cogsys_sim::pe::PeColumn;
use cogsys_vsa::codebook::{BindingOp, CodebookSet};
use cogsys_vsa::{ops, Hypervector};

#[test]
fn nspe_column_results_feed_the_functional_unbinding_path() {
    // Bind two symbols functionally, unbind them on the simulated hardware, and check
    // the cleanup still identifies the right codevector — i.e. the hardware's circular
    // correlation is accurate enough for the symbolic pipeline.
    let mut rng = cogsys_vsa::rng(123);
    let d = 256;
    let role = Hypervector::random_bipolar(d, &mut rng);
    let filler = Hypervector::random_bipolar(d, &mut rng);
    let bound = ops::circular_convolve(&role, &filler);

    let mut column = PeColumn::new(d).expect("non-zero height");
    let recovered = column
        .circular_correlate(role.values(), bound.values())
        .expect("matching dimensions");
    let recovered_hv = Hypervector::from_values(recovered.output);

    let candidates: Vec<Hypervector> = (0..16)
        .map(|i| {
            if i == 7 {
                filler.clone()
            } else {
                Hypervector::random_bipolar(d, &mut rng)
            }
        })
        .collect();
    let sims = ops::matvec_similarity(&candidates, &recovered_hv).expect("same dimension");
    assert_eq!(ops::argmax(&sims), Some(7));
}

#[test]
fn factorizer_converges_on_hardware_generated_queries() {
    // Build the query vector with the cycle-level nsPE model (circular-convolution
    // binding) instead of the functional ops, then factorize it.
    let mut rng = cogsys_vsa::rng(321);
    let d = 512;
    let set = CodebookSet::random(&[6, 6], d, BindingOp::CircularConvolution, &mut rng);
    let a = set.factor(0).unwrap().vector(2).unwrap().clone();
    let b = set.factor(1).unwrap().vector(4).unwrap().clone();

    let mut column = PeColumn::new(d).expect("non-zero height");
    let run = column
        .circular_convolve(a.values(), b.values())
        .expect("matching dimensions");
    let query = Hypervector::from_values(run.output);

    let config = FactorizerConfig {
        convergence_threshold: 0.3,
        ..FactorizerConfig::default()
    };
    let result = Factorizer::new(config)
        .factorize(&set, &query, &mut rng)
        .expect("query matches codebook dimension");
    assert_eq!(result.indices, vec![2, 4]);
}
