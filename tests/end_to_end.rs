//! Cross-crate integration tests: the full algorithm → hardware → scheduler pipeline.

use cogsys::{AblationVariant, CogSysConfig, CogSysSystem};
use cogsys_datasets::DatasetKind;
use cogsys_scheduler::{AdSchScheduler, Scheduler, SequentialScheduler};
use cogsys_sim::{AcceleratorConfig, ComputeArray, DeviceKind};
use cogsys_vsa::Precision;
use cogsys_workloads::{WorkloadKind, WorkloadSpec};

#[test]
fn reasoning_accuracy_latency_and_energy_are_jointly_sane() {
    let system = CogSysSystem::new(CogSysConfig::default());
    let outcome = system
        .run_reasoning(DatasetKind::Raven, 4, 99)
        .expect("default configuration is valid");
    assert_eq!(outcome.report.problems, 4);
    assert!(outcome.report.factorization_accuracy() > 0.5);
    // Real-time bound from the paper's abstract: 0.3 s per reasoning task.
    assert!(outcome.seconds_per_task < 0.3);
    assert!(outcome.joules_per_task > 0.0);
    assert!(outcome.utilization > 0.0 && outcome.utilization <= 1.0);
}

#[test]
fn every_workload_schedules_validly_on_every_accelerator_variant() {
    for kind in WorkloadKind::ALL {
        let graph = WorkloadSpec::new(kind).operation_graph(2);
        for config in [
            AcceleratorConfig::cogsys(),
            AcceleratorConfig::tpu_like(),
            AcceleratorConfig::mtia_like(),
            AcceleratorConfig::gemmini_like(),
        ] {
            let array = ComputeArray::new(config).expect("valid configuration");
            let adsch = AdSchScheduler::default()
                .schedule(&array, &graph)
                .expect("valid graph");
            let seq = SequentialScheduler
                .schedule(&array, &graph)
                .expect("valid graph");
            assert_eq!(adsch.find_violation(&graph), None, "{kind}");
            assert_eq!(seq.find_violation(&graph), None, "{kind}");
            assert!(adsch.makespan_cycles > 0);
        }
    }
}

#[test]
fn speedup_ordering_matches_fig15_for_all_workloads() {
    for kind in WorkloadKind::ALL {
        let config = CogSysConfig {
            workload: kind,
            ..CogSysConfig::default()
        };
        let system = CogSysSystem::new(config);
        let cogsys = system.seconds_per_task().expect("valid configuration");
        let rtx = system.device_seconds_per_task(DeviceKind::RtxGpu);
        let tx2 = system.device_seconds_per_task(DeviceKind::JetsonTx2);
        assert!(cogsys < rtx, "{kind}: CogSys should beat the RTX GPU");
        assert!(rtx < tx2, "{kind}: the RTX GPU should beat the TX2");
    }
}

#[test]
fn ablation_ordering_holds_for_non_default_workloads() {
    let config = CogSysConfig {
        workload: WorkloadKind::Lvrf,
        batch_tasks: 2,
        ..CogSysConfig::default()
    };
    let system = CogSysSystem::new(config);
    let full = system
        .ablation_relative_runtime(AblationVariant::Full)
        .expect("valid configuration");
    let no_nspe = system
        .ablation_relative_runtime(AblationVariant::WithoutNsPe)
        .expect("valid configuration");
    assert!((full - 1.0).abs() < 1e-9);
    assert!(
        no_nspe > 1.5,
        "removing the nsPE should hurt LVRF badly: {no_nspe}"
    );
}

#[test]
fn precision_sweep_trades_area_for_negligible_accuracy() {
    let fp32 = CogSysSystem::new(CogSysConfig::default().with_precision(Precision::Fp32));
    let int8 = CogSysSystem::new(CogSysConfig::default().with_precision(Precision::Int8));
    let fp32_outcome = fp32
        .run_reasoning(DatasetKind::IRaven, 3, 5)
        .expect("valid configuration");
    let int8_outcome = int8
        .run_reasoning(DatasetKind::IRaven, 3, 5)
        .expect("valid configuration");
    // INT8 keeps factorization working (Tab. VIII) ...
    assert!(int8_outcome.report.factorization_accuracy() > 0.5);
    // ... and never increases energy per task relative to FP32 (Tab. IX).
    assert!(int8_outcome.joules_per_task <= fp32_outcome.joules_per_task * 1.05);
}
