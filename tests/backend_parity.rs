//! Cross-checks of the batched execution backends against each other and against the
//! naive time-domain kernels, plus the batch-vs-single factorization regression.
//!
//! These are the repository-level guarantees the `VsaBackend` seam rests on:
//!
//! 1. `ReferenceBackend` and `ParallelBackend` agree (bitwise for Hadamard ops and the
//!    planned FFT, within float tolerance when compared against the `O(d²)` kernel);
//! 2. `PackedBackend` reproduces the reference exactly where the bit-packed algebra
//!    applies (bipolar Hadamard bind/unbind, integer dot products, vote-count bundling)
//!    and within the 1e-4 cosine contract for the Hamming→cosine cleanup mapping, on
//!    power-of-two and non-power-of-two dimensions (tail-word padding included);
//! 3. batching is a pure performance transform — `factorize_batch` returns exactly the
//!    per-query `factorize` results.

use cogsys_factorizer::{Factorizer, FactorizerConfig};
use cogsys_vsa::batch::{BackendKind, HvMatrix};
use cogsys_vsa::codebook::BindingOp;
use cogsys_vsa::packed::BitMatrix;
use cogsys_vsa::{ops, rng, CodebookSet, Hypervector, Precision};
use proptest::prelude::*;

fn random_batch(rows: usize, dim: usize, seed: u64) -> (Vec<Hypervector>, HvMatrix) {
    let mut r = rng(seed);
    let hvs: Vec<Hypervector> = (0..rows)
        .map(|_| Hypervector::random_bipolar(dim, &mut r))
        .collect();
    let m = HvMatrix::from_rows(&hvs).expect("rows share a dimension");
    (hvs, m)
}

/// Cosine similarity between two raw rows (for tolerance comparisons).
fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|v| v * v).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|v| v * v).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reference, parallel, and the naive O(d²) kernel agree on circular-convolution
    /// binding for random dimensions — power-of-two (FFT path) and not (naive path).
    #[test]
    fn prop_backends_match_naive_convolution(seed in 0u64..1000, d_pow in 2u32..9, odd in 0usize..7) {
        // Mix of power-of-two dims (64..512) and non-power-of-two neighbours.
        let dim = (1usize << d_pow) + [0, 1, 3, 5, 7, 11, 13][odd];
        let (rows_a, a) = random_batch(3, dim, seed);
        let (rows_b, b) = random_batch(3, dim, seed ^ 0x5eed);

        let reference = BackendKind::Reference.create();
        let parallel = BackendKind::Parallel.create();
        let r = reference.bind_batch(&a, &b, BindingOp::CircularConvolution).unwrap();
        let p = parallel.bind_batch(&a, &b, BindingOp::CircularConvolution).unwrap();

        for i in 0..3 {
            // The two backends agree within 1e-4 cosine (they are in fact bitwise
            // equal; the cosine bound is the documented contract).
            prop_assert!(cosine(r.row(i), p.row(i)) > 1.0 - 1e-4);
            prop_assert_eq!(r.row(i), p.row(i));
            // And both match the O(d²) time-domain definition within float tolerance.
            let naive = ops::circular_convolve_naive(rows_a[i].values(), rows_b[i].values());
            for (x, y) in p.row(i).iter().zip(&naive) {
                prop_assert!((x - y).abs() < 1e-2 * dim as f32, "{x} vs {y} at dim {dim}");
            }
        }
    }

    /// Unbinding (circular correlation) agrees across backends on random dims.
    #[test]
    fn prop_backends_match_on_unbind(seed in 0u64..1000, dim in 2usize..160) {
        let (_, a) = random_batch(2, dim, seed);
        let (_, b) = random_batch(2, dim, seed + 17);
        let reference = BackendKind::Reference.create();
        let parallel = BackendKind::Parallel.create();
        for op in [BindingOp::Hadamard, BindingOp::CircularConvolution] {
            let r = reference.unbind_batch(&a, &b, op).unwrap();
            let p = parallel.unbind_batch(&a, &b, op).unwrap();
            prop_assert_eq!(r, p);
        }
    }

    /// Similarity GEMM and cleanup agree across backends on random shapes.
    #[test]
    fn prop_backends_match_on_similarity_and_cleanup(
        seed in 0u64..1000,
        dim in 4usize..200,
        code_rows in 2usize..24,
        queries in 1usize..12,
    ) {
        let (_, cb) = random_batch(code_rows, dim, seed);
        let (_, q) = random_batch(queries, dim, seed + 101);
        let reference = BackendKind::Reference.create();
        let parallel = BackendKind::Parallel.create();
        let rs = reference.similarity_matrix(&cb, &q).unwrap();
        let ps = parallel.similarity_matrix(&cb, &q).unwrap();
        for (x, y) in rs.as_slice().iter().zip(ps.as_slice()) {
            // Dots of bipolar rows grow with dim; bound the reordering error
            // relative to the dimension.
            prop_assert!((x - y).abs() < 1e-4 * dim as f32, "{x} vs {y}");
        }
        let rc = reference.cleanup_batch(&cb, &q).unwrap();
        let pc = parallel.cleanup_batch(&cb, &q).unwrap();
        for ((ri, rsim), (pi, psim)) in rc.iter().zip(&pc) {
            prop_assert_eq!(ri, pi);
            prop_assert!((rsim - psim).abs() < 1e-4);
        }
        prop_assert_eq!(
            reference.bundle(&q).unwrap().values(),
            parallel.bundle(&q).unwrap().values()
        );
    }

    /// PackedBackend parity on bipolar inputs: bind/unbind are *exact* (XOR equals the
    /// Hadamard product of signs), across power-of-two and non-power-of-two dims so
    /// tail-word padding is exercised.
    #[test]
    fn prop_packed_bind_unbind_exact_on_bipolar(seed in 0u64..1000, d_pow in 2u32..9, odd in 0usize..7) {
        let dim = (1usize << d_pow) + [0, 1, 3, 5, 7, 11, 13][odd];
        let (_, a) = random_batch(3, dim, seed);
        let (_, b) = random_batch(3, dim, seed ^ 0xb17);
        let reference = BackendKind::Reference.create();
        let packed = BackendKind::Packed.create();
        let r = reference.bind_batch(&a, &b, BindingOp::Hadamard).unwrap();
        let p = packed.bind_batch(&a, &b, BindingOp::Hadamard).unwrap();
        prop_assert_eq!(&r, &p);
        let ru = reference.unbind_batch(&a, &b, BindingOp::Hadamard).unwrap();
        let pu = packed.unbind_batch(&a, &b, BindingOp::Hadamard).unwrap();
        prop_assert_eq!(&ru, &pu);
        // Packed round trip through the BitMatrix representation is lossless.
        let bits = BitMatrix::from_matrix(&a).expect("bipolar rows pack");
        prop_assert_eq!(bits.to_matrix(), a);
        prop_assert_eq!(bits.words_per_row(), dim.div_ceil(64));
    }

    /// PackedBackend similarity is the exact integer dot product and its cleanup
    /// agrees with the reference within 1e-4 cosine after the Hamming→cosine mapping;
    /// bundling (vote counters) matches the reference sum exactly, which pins down the
    /// tie behaviour of any later sign threshold.
    #[test]
    fn prop_packed_similarity_cleanup_bundle(
        seed in 0u64..1000,
        d_pow in 2u32..9,
        odd in 0usize..7,
        code_rows in 2usize..24,
        queries in 1usize..10,
    ) {
        let dim = (1usize << d_pow) + [0, 1, 3, 5, 7, 11, 13][odd];
        let (_, cb) = random_batch(code_rows, dim, seed);
        let (_, q) = random_batch(queries, dim, seed + 131);
        let reference = BackendKind::Reference.create();
        let packed = BackendKind::Packed.create();
        // Dots of ±1 rows are exact in f32, so popcount similarity is bitwise equal.
        prop_assert_eq!(
            reference.similarity_matrix(&cb, &q).unwrap(),
            packed.similarity_matrix(&cb, &q).unwrap()
        );
        let rc = reference.cleanup_batch(&cb, &q).unwrap();
        let pc = packed.cleanup_batch(&cb, &q).unwrap();
        for ((ri, rsim), (pi, psim)) in rc.iter().zip(&pc) {
            prop_assert_eq!(ri, pi);
            prop_assert!((rsim - psim).abs() < 1e-4, "{} vs {}", rsim, psim);
        }
        prop_assert_eq!(
            reference.bundle(&q).unwrap().values(),
            packed.bundle(&q).unwrap().values()
        );
    }

    /// The fused packed weighted-projection kernel (per-dimension f32 accumulators
    /// over sign planes + fused perturbation + sign threshold) equals the dense
    /// `project_batch_into` followed by the same perturbation and threshold —
    /// **bitwise**, with and without noise, across power-of-two and non-power-of-two
    /// dimensions (tail words included).
    #[test]
    fn prop_packed_projection_matches_dense(
        seed in 0u64..1000,
        d_pow in 2u32..9,
        odd in 0usize..7,
        code_rows in 2usize..16,
        queries in 1usize..6,
        noise_sel in 0usize..2,
    ) {
        use cogsys_vsa::packed::PackedBackend;
        use rand::SeedableRng;
        use rand_distr::{Distribution, Normal};

        let with_noise = noise_sel == 1;
        let dim = (1usize << d_pow) + [0, 1, 3, 5, 7, 11, 13][odd];
        let (_, cb) = random_batch(code_rows, dim, seed);
        let cb_bits = BitMatrix::from_matrix(&cb).expect("bipolar codebook packs");
        // Real-valued weights, as the resonator's (noise-injected) similarity rows are.
        let mut r = rng(seed ^ 0xfeed);
        let weights = HvMatrix::from_rows(
            &(0..queries)
                .map(|_| Hypervector::random_real(code_rows, &mut r))
                .collect::<Vec<_>>(),
        ).unwrap();

        let noise = Normal::new(0.0_f32, 0.75).unwrap();
        // Dense path: project, perturb with a per-query stream, sign-threshold.
        let reference = BackendKind::Reference.create();
        let dense = reference.project_batch(&cb, &weights).unwrap();
        let mut expected = Vec::new();
        for q in 0..queries {
            let mut row = dense.row(q).to_vec();
            if with_noise {
                let mut stream = rand::rngs::StdRng::seed_from_u64(seed + q as u64);
                for v in &mut row {
                    *v += noise.sample(&mut stream);
                }
            }
            expected.push(row.iter().map(|&v| if v < 0.0 { -1.0 } else { 1.0 }).collect::<Vec<f32>>());
        }

        // Packed path: the same perturbation runs fused inside the kernel.
        let packed = PackedBackend::new();
        let (mut out, mut acc) = (BitMatrix::default(), Vec::new());
        packed.project_signs_packed_into(&cb_bits, &weights, |q, row| {
            if with_noise {
                let mut stream = rand::rngs::StdRng::seed_from_u64(seed + q as u64);
                for v in row.iter_mut() {
                    *v += noise.sample(&mut stream);
                }
            }
        }, &mut acc, &mut out);

        let unpacked = out.to_matrix();
        for (q, row) in expected.iter().enumerate() {
            prop_assert_eq!(unpacked.row(q), row.as_slice());
        }
    }

    /// Pre-packed `BitMatrix` queries through `Codebook::cleanup_batch_bits` decode
    /// exactly like the same queries through the f32 `cleanup_batch` surface, on every
    /// backend — the end-to-end packed query path changes cost, never results.
    #[test]
    fn prop_packed_query_cleanup_equals_dense_query(
        seed in 0u64..1000,
        d_pow in 2u32..9,
        odd in 0usize..7,
        code_rows in 2usize..24,
        queries in 1usize..10,
    ) {
        use cogsys_vsa::Codebook;

        let dim = (1usize << d_pow) + [0, 1, 3, 5, 7, 11, 13][odd];
        let mut r = rng(seed);
        let cb = Codebook::random("p", code_rows, dim, &mut r);
        let (_, q) = random_batch(queries, dim, seed + 211);
        let bits = BitMatrix::from_matrix(&q).expect("bipolar queries pack");
        for kind in BackendKind::ALL {
            let backend = kind.create();
            let dense = cb.cleanup_batch(backend.as_ref(), &q).unwrap();
            let packed = cb.cleanup_batch_bits(backend.as_ref(), &bits).unwrap();
            for ((di, dsim), (pi, psim)) in dense.iter().zip(&packed) {
                prop_assert_eq!(di, pi);
                prop_assert!((dsim - psim).abs() < 1e-4, "{}: {} vs {}", kind, dsim, psim);
            }
        }
    }

    /// The fused resonator mega-kernel equals the split three-pass sequence
    /// (unbind materialization → similarity GEMM → weighted sign projection)
    /// **bitwise** — estimate sign planes, perturbed similarity rows, argmax
    /// decisions, and per-query noise-stream positions — with and without
    /// noise, across power-of-two and non-power-of-two dims (tail words
    /// included) and row counts crossing the 8-query lane-block boundary,
    /// through both the runtime-length kernel and the `WordSpec` dispatch,
    /// over two Gauss–Seidel iterations so the in-place estimate feedback is
    /// exercised.
    #[test]
    fn prop_fused_resonator_step_matches_split(
        seed in 0u64..1000,
        d_pow in 2u32..9,
        odd in 0usize..7,
        code_rows in 2usize..16,
        rows in 1usize..20,
        factors in 2usize..5,
        noise_sel in 0usize..2,
    ) {
        use cogsys_vsa::packed::{PackedBackend, ResonatePhase, WordSpec};
        use rand::{RngCore, SeedableRng};
        use rand_distr::{Distribution, Normal};

        let with_noise = noise_sel == 1;
        let dim = (1usize << d_pow) + [0, 1, 3, 5, 7, 11, 13][odd];
        let spec = WordSpec::for_dim(dim);
        let packed = PackedBackend::new();
        let noise = Normal::new(0.0_f32, 0.75).unwrap();
        let mut setup = rng(seed ^ 0xf00d);
        let codebooks: Vec<BitMatrix> = (0..factors)
            .map(|_| BitMatrix::random_bipolar(code_rows, dim, &mut setup))
            .collect();
        let query = BitMatrix::random_bipolar(rows, dim, &mut setup);
        let initial: Vec<BitMatrix> = (0..factors)
            .map(|_| BitMatrix::random_bipolar(rows, dim, &mut setup))
            .collect();
        let streams = || -> Vec<rand::rngs::StdRng> {
            (0..rows)
                .map(|q| rand::rngs::StdRng::seed_from_u64(seed + q as u64))
                .collect()
        };

        // Split reference: materialized unbind, standalone similarity, standalone
        // projection — the pre-fusion resonator's exact pass structure.
        let mut est_split = initial.clone();
        let mut streams_split = streams();
        let mut split_decisions = Vec::new();
        let mut sims_split = HvMatrix::default();
        let (mut unbound, mut acc) = (BitMatrix::default(), Vec::new());
        for _iter in 0..2 {
            for (f, codebook) in codebooks.iter().enumerate() {
                let (head, rest) = est_split.split_at_mut(f);
                let (out, tail) = rest.split_first_mut().unwrap();
                unbound.copy_from(&query);
                for est in head.iter().chain(tail.iter()) {
                    unbound.xor_assign(est).unwrap();
                }
                packed.similarity_matrix_packed_into(codebook, &unbound, &mut sims_split);
                for (q, stream) in streams_split.iter_mut().enumerate() {
                    let row = sims_split.row_mut(q);
                    if with_noise {
                        for v in row.iter_mut() {
                            *v += noise.sample(stream);
                        }
                    }
                    split_decisions.push(ops::argmax(row).unwrap_or(0));
                }
                packed.project_signs_packed_into(codebook, &sims_split, |q, row| {
                    if with_noise {
                        for v in row.iter_mut() {
                            *v += noise.sample(&mut streams_split[q]);
                        }
                    }
                }, &mut acc, out);
            }
        }

        // Fused paths: runtime-length kernel and the WordSpec dispatch (which
        // falls back to the runtime kernel when no spec matches the word count,
        // so non-power-of-two dims cover the fallback arm).
        for use_spec in [false, true] {
            let mut est_fused = initial.clone();
            let mut streams_fused = streams();
            let mut fused_decisions = Vec::new();
            let mut sims_fused = HvMatrix::default();
            let (mut lanes, mut acc_f) = (BitMatrix::default(), Vec::new());
            for _iter in 0..2 {
                for (f, codebook) in codebooks.iter().enumerate() {
                    let hook = |phase: ResonatePhase, q: usize, row: &mut [f32]| {
                        if with_noise {
                            for v in row.iter_mut() {
                                *v += noise.sample(&mut streams_fused[q]);
                            }
                        }
                        if phase == ResonatePhase::Similarity {
                            fused_decisions.push(ops::argmax(row).unwrap_or(0));
                        }
                    };
                    if use_spec {
                        packed.resonate_step_fused_spec_into(
                            spec, codebook, &query, &mut est_fused, f,
                            &mut lanes, &mut sims_fused, &mut acc_f, hook,
                        );
                    } else {
                        packed.resonate_step_fused_into(
                            codebook, &query, &mut est_fused, f,
                            &mut lanes, &mut sims_fused, &mut acc_f, hook,
                        );
                    }
                }
            }
            prop_assert_eq!(&est_fused, &est_split);
            prop_assert_eq!(&fused_decisions, &split_decisions);
            prop_assert_eq!(&sims_fused, &sims_split);
            // Compare against clones: the split streams are re-read by the
            // second fused round.
            for (fs, ss) in streams_fused.iter_mut().zip(&streams_split) {
                prop_assert_eq!(fs.next_u64(), ss.clone().next_u64());
            }
        }
    }

    /// Non-bipolar operands must not silently lose magnitude: the packed backend's
    /// results match the dense fallback bitwise.
    #[test]
    fn prop_packed_falls_back_on_real_inputs(seed in 0u64..500, dim in 2usize..130) {
        let mut r = rng(seed);
        let hvs: Vec<Hypervector> = (0..3)
            .map(|_| Hypervector::random_real(dim, &mut r))
            .collect();
        let a = HvMatrix::from_rows(&hvs).unwrap();
        let (_, b) = random_batch(3, dim, seed + 7);
        let parallel = BackendKind::Parallel.create();
        let packed = BackendKind::Packed.create();
        for op in [BindingOp::Hadamard, BindingOp::CircularConvolution] {
            prop_assert_eq!(
                parallel.bind_batch(&a, &b, op).unwrap(),
                packed.bind_batch(&a, &b, op).unwrap()
            );
        }
        prop_assert_eq!(
            parallel.similarity_matrix(&a, &b).unwrap(),
            packed.similarity_matrix(&a, &b).unwrap()
        );
    }
}

#[test]
fn factorize_batch_regression_matches_per_query_results() {
    // Satellite regression at the repository level: run a harder configuration than
    // the unit test (circular-convolution binding + INT8) and require exact equality
    // of decoded indices between the batch and per-query paths.
    let mut setup = rng(2024);
    let set = CodebookSet::random(&[6, 6], 1024, BindingOp::CircularConvolution, &mut setup);
    let tuples = [[0usize, 5], [3, 2], [5, 5], [1, 0], [4, 3], [2, 1]];
    let queries: Vec<Hypervector> = tuples
        .iter()
        .map(|t| set.bind_indices(t).unwrap())
        .collect();
    let config = FactorizerConfig {
        convergence_threshold: 0.3,
        ..FactorizerConfig::default()
    }
    .with_precision(Precision::Int8);
    let factorizer = Factorizer::new(config);

    let mut rng_batch = rng(1);
    let batch = factorizer
        .factorize_batch(&set, &queries, &mut rng_batch)
        .unwrap();

    let mut rng_single = rng(1);
    for (q, query) in queries.iter().enumerate() {
        let single = factorizer.factorize(&set, query, &mut rng_single).unwrap();
        assert_eq!(
            batch[q].indices, single.indices,
            "indices differ at query {q}"
        );
        assert_eq!(batch[q], single, "full result differs at query {q}");
    }
    // And the decode itself is correct.
    for (result, expected) in batch.iter().zip(&tuples) {
        assert_eq!(result.indices, expected.to_vec());
    }
}

#[test]
fn fusion_split_is_decision_identical_end_to_end() {
    // The `COGSYS_FUSION=split` escape hatch (and the plan compiler's Split
    // decision it resolves to) must change nothing observable: reports, answer
    // choices, and final rng state are identical through `solve_batch` on all
    // three dataset families. The env-var leg runs through
    // `FusionMode::resolve_env` exactly as a deployment would; the rest of the
    // A/B forces the decision through `compile_plan_with_fusion` so the test is
    // immune to env races from parallel tests.
    use cogsys_datasets::{DatasetKind, ProblemGenerator};
    use cogsys_vsa::FusionMode;
    use cogsys_workloads::{NeurosymbolicSolver, SolverConfig, SolverScratch};
    use rand::RngCore;

    std::env::set_var("COGSYS_FUSION", "split");
    assert_eq!(FusionMode::resolve_env(), FusionMode::Split);
    std::env::remove_var("COGSYS_FUSION");
    assert_eq!(FusionMode::resolve_env(), FusionMode::Fused);

    for kind in DatasetKind::ALL {
        let mut r = rng(0xAB);
        let solver = NeurosymbolicSolver::new(SolverConfig::default(), &mut r);
        let problems = ProblemGenerator::new(kind).generate_batch(4, &mut r);

        let fused_plan = solver.compile_plan_with_fusion(4, true, FusionMode::Fused);
        let split_plan = solver.compile_plan_with_fusion(4, true, FusionMode::Split);
        assert_eq!(fused_plan.resonate_fusion(0), Some(FusionMode::Fused));
        assert_eq!(split_plan.resonate_fusion(0), Some(FusionMode::Split));

        let mut r1 = r.clone();
        let mut r2 = r.clone();
        let mut sc1 = SolverScratch::default();
        let mut sc2 = SolverScratch::default();
        let fused = solver
            .solve_batch_with_plan(&fused_plan, &problems, &mut r1, &mut sc1)
            .unwrap();
        let split = solver
            .solve_batch_with_plan(&split_plan, &problems, &mut r2, &mut sc2)
            .unwrap();
        assert_eq!(fused, split, "{kind}: reports diverge between fusion modes");
        assert_eq!(
            sc1.choices(),
            sc2.choices(),
            "{kind}: answer choices diverge between fusion modes"
        );
        assert_eq!(
            r1.next_u64(),
            r2.next_u64(),
            "{kind}: rng streams diverge between fusion modes"
        );
    }
}

#[test]
fn backends_agree_through_the_factorizer_on_both_bindings() {
    for (binding, threshold) in [
        (BindingOp::Hadamard, 0.9f32),
        (BindingOp::CircularConvolution, 0.3),
    ] {
        let mut setup = rng(7);
        let set = CodebookSet::random(&[5, 5], 1024, binding, &mut setup);
        let query = set.bind_indices(&[2, 4]).unwrap();
        let config = FactorizerConfig {
            convergence_threshold: threshold,
            ..FactorizerConfig::default()
        };
        let mut r1 = rng(3);
        let mut r2 = rng(3);
        let a = Factorizer::new(config.clone().with_backend(BackendKind::Reference))
            .factorize(&set, &query, &mut r1)
            .unwrap();
        let b = Factorizer::new(config.with_backend(BackendKind::Parallel))
            .factorize(&set, &query, &mut r2)
            .unwrap();
        assert_eq!(a.indices, b.indices, "backends disagree under {binding:?}");
        assert_eq!(a.converged, b.converged);
        assert!((a.similarity - b.similarity).abs() < 1e-4);
        assert_eq!(a.indices, vec![2, 4]);
    }
}
