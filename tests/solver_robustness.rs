//! Property tests: no input reachable from the serving boundary can panic the
//! solve path. Malformed, bit-flipped and arbitrarily mangled problem specs
//! must come back as typed [`SolveError`]s (or solve cleanly), never abort.

use cogsys_datasets::{DatasetKind, Panel, ProblemGenerator};
use cogsys_serve::chaos::flip_value_bits;
use cogsys_workloads::{NeurosymbolicSolver, SolveError, SolverConfig, SolverScratch};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A small solver is enough: validation and routing are dimension-independent.
fn solver(seed: u64) -> NeurosymbolicSolver {
    let config = SolverConfig {
        vector_dim: 128,
        ..SolverConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    NeurosymbolicSolver::try_new(config, &mut rng).expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A generator-produced malformed problem hidden in a batch of clean ones
    /// is rejected with a typed error naming exactly its position.
    #[test]
    fn prop_malformed_specs_fail_typed_at_their_index(seed in 0u64..1_000_000, pos in 0usize..4) {
        let solver = solver(seed ^ 0xC0DE);
        let mut rng = StdRng::seed_from_u64(seed);
        let generator = ProblemGenerator::new(DatasetKind::Raven);
        let mut problems = generator.generate_batch(3, &mut rng);
        problems.insert(pos.min(problems.len()), generator.generate_malformed(&mut rng));

        let mut scratch = SolverScratch::default();
        let result = solver.solve_batch_with(&problems, &mut StdRng::seed_from_u64(seed), &mut scratch);
        match result {
            Err(SolveError::Malformed { problem, .. }) => {
                prop_assert_eq!(problem, pos.min(3));
            }
            other => return Err(TestCaseError::fail(format!(
                "malformed batch must fail typed, got {other:?}"
            ))),
        }
    }

    /// Bit flips beyond the interface spec (the chaos harness's in-band
    /// corruption) either solve cleanly or fail typed — never panic.
    #[test]
    fn prop_bit_flipped_specs_never_panic(seed in 0u64..1_000_000, flips in 1usize..5) {
        let solver = solver(seed ^ 0xF117);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut problem = ProblemGenerator::new(DatasetKind::IRaven).generate(&mut rng);
        flip_value_bits(&mut problem, flips, &mut rng);

        let mut scratch = SolverScratch::default();
        match solver.solve_batch_with(
            std::slice::from_ref(&problem),
            &mut StdRng::seed_from_u64(seed),
            &mut scratch,
        ) {
            Ok(_) => prop_assert!(scratch.choices()[0] < problem.candidates.len()),
            Err(SolveError::Malformed { problem: index, .. }) => prop_assert_eq!(index, 0),
            Err(other) => return Err(TestCaseError::fail(format!(
                "unexpected error class: {other}"
            ))),
        }
    }

    /// Arbitrarily mangled specs — wrong panel counts, junk answer slots,
    /// values far out of range — are absorbed as typed errors.
    #[test]
    fn prop_mangled_specs_never_panic(
        seed in 0u64..1_000_000,
        context_len in 0usize..12,
        candidates_len in 0usize..10,
        answer in 0usize..16,
    ) {
        let solver = solver(seed ^ 0x9A17);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut problem = ProblemGenerator::new(DatasetKind::Pgm).generate(&mut rng);
        let junk_panel = |rng: &mut StdRng| {
            let mut values = [0usize; 5];
            for value in &mut values {
                *value = rng.gen_range(0..20usize);
            }
            Panel::new_unchecked(values)
        };
        problem.context = (0..context_len).map(|_| junk_panel(&mut rng)).collect();
        problem.candidates = (0..candidates_len).map(|_| junk_panel(&mut rng)).collect();
        problem.answer_index = answer;

        let mut scratch = SolverScratch::default();
        match solver.solve_batch_with(
            std::slice::from_ref(&problem),
            &mut StdRng::seed_from_u64(seed),
            &mut scratch,
        ) {
            // A fully random spec that happens to be well-formed may solve.
            Ok(_) => prop_assert!(NeurosymbolicSolver::validate_problem(&problem).is_ok()),
            Err(SolveError::Malformed { .. }) => {
                prop_assert!(NeurosymbolicSolver::validate_problem(&problem).is_err());
            }
            Err(other) => return Err(TestCaseError::fail(format!(
                "unexpected error class: {other}"
            ))),
        }
    }
}
