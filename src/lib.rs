//! Workspace-level umbrella crate for the CogSys reproduction.
//!
//! This crate exists to host repository-level integration tests (`tests/`) and runnable
//! examples (`examples/`); all functionality lives in the `cogsys-*` crates.
pub use cogsys;
pub use cogsys_datasets as datasets;
pub use cogsys_factorizer as factorizer;
pub use cogsys_scheduler as scheduler;
pub use cogsys_serve as serve;
pub use cogsys_sim as sim;
pub use cogsys_vsa as vsa;
pub use cogsys_workloads as workloads;
